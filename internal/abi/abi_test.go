package abi

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"dpurpc/internal/arena"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protodsl"
)

const testSchema = `
syntax = "proto3";
package t;

message Small {
  uint32 id = 1;
  bool flag = 2;
  sint32 delta = 3;
  float ratio = 4;
}

message Mixed {
  bool b = 1;
  uint32 u = 2;
  double d = 3;
  string s = 4;
  bytes raw = 5;
  Small child = 6;
  repeated uint32 nums = 7;
  repeated string names = 8;
  repeated Small kids = 9;
  repeated bool flags = 10;
  repeated double weights = 11;
}

message Recur {
  uint64 n = 1;
  Recur next = 2;
}

message Empty {}
`

var (
	smallDesc *protodesc.Message
	mixedDesc *protodesc.Message
	recurDesc *protodesc.Message
	emptyDesc *protodesc.Message
)

func init() {
	f, err := protodsl.Parse("abi_test.proto", testSchema)
	if err != nil {
		panic(err)
	}
	r := protodesc.NewRegistry()
	if err := r.Register(f); err != nil {
		panic(err)
	}
	smallDesc = r.Message("t.Small")
	mixedDesc = r.Message("t.Mixed")
	recurDesc = r.Message("t.Recur")
	emptyDesc = r.Message("t.Empty")
}

func TestLayoutSmall(t *testing.T) {
	l := Compute(smallDesc)
	// 8 (classID) + 4 (1 presence word) = 12; id@12, flag@16(1B),
	// delta@20, ratio@24 -> size 28 -> aligned 32.
	if l.PresenceOff != 8 || l.PresenceWords != 1 {
		t.Errorf("presence: off=%d words=%d", l.PresenceOff, l.PresenceWords)
	}
	wantOffsets := map[string]uint32{"id": 12, "flag": 16, "delta": 20, "ratio": 24}
	for name, want := range wantOffsets {
		if got := l.FieldByName(name).Offset; got != want {
			t.Errorf("%s offset = %d, want %d", name, got, want)
		}
	}
	if l.Size != 32 {
		t.Errorf("size = %d, want 32", l.Size)
	}
	if l.Size%ObjectAlign != 0 {
		t.Error("size not aligned")
	}
}

func TestLayoutFieldAlignment(t *testing.T) {
	l := Compute(mixedDesc)
	for i, f := range l.Fields {
		var alignment uint32 = f.Size
		if f.Repeated || f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes ||
			f.Kind == protodesc.KindMessage {
			alignment = 8
		}
		if f.Offset%alignment != 0 {
			t.Errorf("field %d (%s) offset %d violates alignment %d",
				i, f.Desc.Name, f.Offset, alignment)
		}
	}
	if l.FieldByName("s").Size != StringRecordSize {
		t.Error("string record size wrong")
	}
	if l.FieldByName("nums").Size != RepeatedHdrSize || l.FieldByName("nums").ElemSize != 4 {
		t.Error("repeated u32 layout wrong")
	}
	if l.FieldByName("flags").ElemSize != 1 || l.FieldByName("weights").ElemSize != 8 {
		t.Error("repeated elem sizes wrong")
	}
	if l.FieldByName("child").Size != RefSize {
		t.Error("message ref size wrong")
	}
}

func TestLayoutRecursive(t *testing.T) {
	l := Compute(recurDesc)
	if l.FieldByName("next").Child != l {
		t.Error("recursive type should reuse its own layout")
	}
}

func TestLayoutEmptyMessage(t *testing.T) {
	l := Compute(emptyDesc)
	if l.Size < ClassIDSize || l.Size%ObjectAlign != 0 {
		t.Errorf("empty message size = %d", l.Size)
	}
	if l.PresenceWords != 0 {
		t.Errorf("empty message has %d presence words", l.PresenceWords)
	}
}

func TestDefaultInstanceCarriesClassID(t *testing.T) {
	l := Compute(smallDesc)
	l.SetClassID(77)
	if binary.LittleEndian.Uint64(l.Default[0:8]) != 77 {
		t.Error("default instance classID not set")
	}
	for _, b := range l.Default[8:] {
		if b != 0 {
			t.Error("default instance has non-zero field bytes")
		}
	}
	if len(l.Default) != int(l.Size) {
		t.Error("default instance size mismatch")
	}
}

func TestDeterministicLayouts(t *testing.T) {
	a := Compute(mixedDesc)
	b := Compute(mixedDesc)
	if err := CheckCompatible(a, b); err != nil {
		t.Fatalf("identical descriptors incompatible: %v", err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints differ for identical descriptors")
	}
}

func TestCheckCompatibleDetectsDrift(t *testing.T) {
	// Simulate an ABI drift: same type name, different field set — the
	// scenario the paper's binary-compatibility assumption (Sec. V-A) guards
	// against.
	f1, err := protodsl.Parse("a.proto", `syntax="proto3"; package t; message M { uint32 a = 1; uint64 b = 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := protodsl.Parse("b.proto", `syntax="proto3"; package t; message M { uint64 a = 1; uint64 b = 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	la := Compute(f1.Messages[0])
	lb := Compute(f2.Messages[0])
	if err := CheckCompatible(la, lb); err == nil {
		t.Error("layout drift not detected")
	}
	if la.Fingerprint() == lb.Fingerprint() {
		t.Error("fingerprints match for different layouts")
	}
	// Different type names.
	f3, _ := protodsl.Parse("c.proto", `syntax="proto3"; package t; message N { uint32 a = 1; uint64 b = 2; }`)
	if err := CheckCompatible(la, Compute(f3.Messages[0])); err == nil {
		t.Error("name drift not detected")
	}
}

func TestComputeAllSharesLayouts(t *testing.T) {
	ls := ComputeAll([]*protodesc.Message{mixedDesc, smallDesc})
	if ls[0].FieldByName("child").Child != ls[1] {
		t.Error("ComputeAll did not share the nested layout")
	}
}

func newBuilder(t *testing.T, size int) *Builder {
	t.Helper()
	return NewBuilder(arena.NewBump(make([]byte, size)), 0)
}

func TestBuilderGuardReservesOffsetZero(t *testing.T) {
	b := newBuilder(t, 1024)
	o, err := b.NewObject(Compute(smallDesc))
	if err != nil {
		t.Fatal(err)
	}
	if o.Off() == 0 {
		t.Error("object placed at region offset 0 (NullRef)")
	}
}

func TestBuildAndViewScalars(t *testing.T) {
	lay := Compute(smallDesc)
	lay.SetClassID(3)
	b := newBuilder(t, 1024)
	o, err := b.NewObject(lay)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetBits("id", 12345); err != nil {
		t.Fatal(err)
	}
	if err := o.SetBits("flag", 1); err != nil {
		t.Fatal(err)
	}
	delta := int32(-7)
	if err := o.SetBits("delta", uint64(uint32(delta))); err != nil {
		t.Fatal(err)
	}
	if err := o.SetBits("ratio", uint64(math.Float32bits(2.5))); err != nil {
		t.Fatal(err)
	}
	v := o.View()
	if !v.Valid() {
		t.Fatal("view invalid")
	}
	if v.U32Name("id") != 12345 || !v.BoolName("flag") ||
		v.I32Name("delta") != -7 || v.F32Name("ratio") != 2.5 {
		t.Error("scalar values wrong")
	}
	for _, name := range []string{"id", "flag", "delta", "ratio"} {
		if !v.HasName(name) {
			t.Errorf("%s not present", name)
		}
	}
}

func TestBuildStringsSSOAndSpill(t *testing.T) {
	lay := Compute(mixedDesc)
	b := newBuilder(t, 4096)
	o, err := b.NewObject(lay)
	if err != nil {
		t.Fatal(err)
	}
	short := []byte("short")              // 5 bytes -> SSO
	exact := []byte("123456789012345")    // 15 bytes -> SSO boundary
	long := bytes.Repeat([]byte("x"), 16) // 16 bytes -> spill
	if err := o.SetStr("s", short); err != nil {
		t.Fatal(err)
	}
	v := o.View()
	if string(v.StrName("s")) != "short" {
		t.Errorf("sso read = %q", v.StrName("s"))
	}
	if !v.IsSSO(v.Lay.Msg.FieldByName("s").Index) {
		t.Error("5-byte string should be SSO")
	}
	if err := o.SetStr("s", exact); err != nil {
		t.Fatal(err)
	}
	if !v.IsSSO(v.Lay.Msg.FieldByName("s").Index) || string(v.StrName("s")) != string(exact) {
		t.Error("15-byte string should be SSO")
	}
	if err := o.SetStr("raw", long); err != nil {
		t.Fatal(err)
	}
	if v.IsSSO(v.Lay.Msg.FieldByName("raw").Index) {
		t.Error("16-byte value must spill")
	}
	if !bytes.Equal(v.StrName("raw"), long) {
		t.Error("spilled read wrong")
	}
	// Empty string: zero length, still readable.
	if err := o.SetStr("s", nil); err != nil {
		t.Fatal(err)
	}
	if got := v.StrName("s"); got == nil || len(got) != 0 {
		t.Errorf("empty string read = %v", got)
	}
}

func TestBuildNestedAndRepeated(t *testing.T) {
	lays := ComputeAll([]*protodesc.Message{mixedDesc, smallDesc})
	mixedLay, smallLay := lays[0], lays[1]
	b := newBuilder(t, 1<<16)
	child, err := b.NewObject(smallLay)
	if err != nil {
		t.Fatal(err)
	}
	child.SetBits("id", 99)
	o, err := b.NewObject(mixedLay)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetMsg("child", child); err != nil {
		t.Fatal(err)
	}
	nums := []uint64{1, 2, 3, 1 << 31}
	if err := o.SetNums("nums", nums); err != nil {
		t.Fatal(err)
	}
	if err := o.SetStrs("names", [][]byte{[]byte("a"), bytes.Repeat([]byte("b"), 40), nil}); err != nil {
		t.Fatal(err)
	}
	kid1, _ := b.NewObject(smallLay)
	kid1.SetBits("id", 1)
	kid2, _ := b.NewObject(smallLay)
	kid2.SetBits("id", 2)
	if err := o.SetMsgs("kids", []Obj{kid1, kid2}); err != nil {
		t.Fatal(err)
	}
	if err := o.SetNums("flags", []uint64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := o.SetNums("weights", []uint64{math.Float64bits(0.5), math.Float64bits(-1)}); err != nil {
		t.Fatal(err)
	}

	v := o.View()
	cv, ok := v.MsgName("child")
	if !ok || cv.U32Name("id") != 99 {
		t.Error("nested message read failed")
	}
	if v.LenName("nums") != 4 || v.NumAtName("nums", 3) != 1<<31 {
		t.Error("repeated nums wrong")
	}
	if string(v.StrAtName("names", 0)) != "a" || len(v.StrAtName("names", 1)) != 40 {
		t.Error("repeated strings wrong")
	}
	if got := v.StrAtName("names", 2); got == nil || len(got) != 0 {
		t.Error("empty repeated string wrong")
	}
	k2, ok := v.MsgAtName("kids", 1)
	if !ok || k2.U32Name("id") != 2 {
		t.Error("repeated message wrong")
	}
	if v.LenName("flags") != 3 || v.NumAtName("flags", 0) != 1 || v.NumAtName("flags", 1) != 0 {
		t.Error("repeated bools wrong")
	}
	if math.Float64frombits(v.NumAtName("weights", 1)) != -1 {
		t.Error("repeated doubles wrong")
	}
	// Raw bulk access covers count*elem bytes.
	if raw := v.NumsRaw(v.Lay.Msg.FieldByName("nums").Index); len(raw) != 16 {
		t.Errorf("NumsRaw len = %d", len(raw))
	}
}

func TestViewUnsetAndOutOfRange(t *testing.T) {
	lay := Compute(mixedDesc)
	b := newBuilder(t, 4096)
	o, _ := b.NewObject(lay)
	v := o.View()
	if v.HasName("b") || v.BoolName("b") || v.U32Name("u") != 0 {
		t.Error("unset scalars should read zero")
	}
	if _, ok := v.MsgName("child"); ok {
		t.Error("unset message should be absent")
	}
	if v.LenName("nums") != 0 || v.NumAtName("nums", 0) != 0 {
		t.Error("unset repeated should be empty")
	}
	if v.StrAtName("names", 5) != nil {
		t.Error("out-of-range StrAt should be nil")
	}
	if _, ok := v.MsgAtName("kids", 0); ok {
		t.Error("out-of-range MsgAt should be absent")
	}
	if v.Has(-1) || v.Has(999) {
		t.Error("out-of-range Has should be false")
	}
	if v.U32Name("no_such") != 0 || v.HasName("no_such") {
		t.Error("unknown names should read zero")
	}
	// Unset string field: record is all zeros -> empty read.
	if got := v.StrName("s"); len(got) != 0 {
		t.Errorf("unset string = %q", got)
	}
}

func TestViewValidRejectsWrongClass(t *testing.T) {
	lay := Compute(smallDesc)
	lay.SetClassID(5)
	other := Compute(mixedDesc)
	other.SetClassID(6)
	b := newBuilder(t, 4096)
	o, _ := b.NewObject(lay)
	bad := MakeView(b.Region(), o.Off(), other)
	if bad.Valid() {
		t.Error("view with wrong layout validated")
	}
	if o.View().Valid() != true {
		t.Error("correct view did not validate")
	}
}

func TestRegionBounds(t *testing.T) {
	r := &Region{Buf: make([]byte, 100), Base: 1000}
	if r.Slice(999, 1) != nil {
		t.Error("below-base slice allowed")
	}
	if r.Slice(1000, 101) != nil {
		t.Error("over-length slice allowed")
	}
	if len(r.Slice(1050, 50)) != 50 {
		t.Error("valid slice failed")
	}
	if r.Slice(1100, 1) != nil {
		t.Error("past-end slice allowed")
	}
	// Overflow attempt.
	if r.Slice(^uint64(0), 8) != nil {
		t.Error("overflowing offset allowed")
	}
	if !r.Contains(1000, 100) || r.Contains(1000, 101) {
		t.Error("Contains wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	lays := ComputeAll([]*protodesc.Message{mixedDesc, smallDesc})
	b := newBuilder(t, 1<<16)
	o, _ := b.NewObject(lays[0])
	if err := o.SetBits("no_field", 1); err == nil {
		t.Error("unknown field accepted")
	}
	if err := o.SetBits("s", 1); err == nil {
		t.Error("SetBits on string accepted")
	}
	if err := o.SetStr("u", nil); err == nil {
		t.Error("SetStr on scalar accepted")
	}
	if err := o.SetMsg("u", Obj{}); err == nil {
		t.Error("SetMsg on scalar accepted")
	}
	small, _ := b.NewObject(lays[1])
	if err := o.SetMsg("child", o); err == nil {
		t.Error("wrong child type accepted")
	}
	if err := o.SetNums("names", nil); err == nil {
		t.Error("SetNums on strings accepted")
	}
	if err := o.SetStrs("nums", nil); err == nil {
		t.Error("SetStrs on nums accepted")
	}
	if err := o.SetMsgs("kids", []Obj{o}); err == nil {
		t.Error("wrong element type accepted")
	}
	_ = small
	// Exhaustion.
	tiny := NewBuilder(arena.NewBump(make([]byte, 16)), 0)
	if _, err := tiny.NewObject(lays[0]); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
}

func TestLayoutString(t *testing.T) {
	s := Compute(mixedDesc).String()
	for _, want := range []string{"class t.Mixed", "hasbits", "repeated", "string s"} {
		if !strings.Contains(s, want) {
			t.Errorf("layout dump missing %q:\n%s", want, s)
		}
	}
}

func TestObjIsZero(t *testing.T) {
	var o Obj
	if !o.IsZero() {
		t.Error("zero Obj not IsZero")
	}
	b := newBuilder(t, 1024)
	o2, _ := b.NewObject(Compute(smallDesc))
	if o2.IsZero() {
		t.Error("real Obj IsZero")
	}
	if o2.Layout().Msg != smallDesc {
		t.Error("Layout accessor wrong")
	}
}
