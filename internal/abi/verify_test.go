package abi

import (
	"encoding/binary"
	"strings"
	"testing"

	"dpurpc/internal/arena"
)

func TestVerifyValidGraph(t *testing.T) {
	mixedLay := Compute(mixedDesc)
	smallLay := mixedLay.FieldByName("child").Child
	b := NewBuilder(arena.NewBump(make([]byte, 1<<16)), 0)
	child, _ := b.NewObject(smallLay)
	child.SetBits("id", 4)
	o, err := b.NewObject(mixedLay)
	if err != nil {
		t.Fatal(err)
	}
	o.SetMsg("child", child)
	o.SetStr("s", []byte("tiny"))
	o.SetStr("raw", []byte(strings.Repeat("x", 64)))
	o.SetNums("nums", []uint64{1, 2, 3})
	o.SetStrs("names", [][]byte{[]byte("a"), []byte(strings.Repeat("b", 30))})
	k1, _ := b.NewObject(smallLay)
	o.SetMsgs("kids", []Obj{k1})
	if err := Verify(o.View()); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// An empty object verifies too.
	empty, _ := b.NewObject(mixedLay)
	if err := Verify(empty.View()); err != nil {
		t.Fatalf("empty object rejected: %v", err)
	}
}

// mkCorruptible builds an object with a spilled string and an array.
func mkCorruptible(t *testing.T) (Obj, *Builder) {
	t.Helper()
	mixedLay := Compute(mixedDesc)
	b := NewBuilder(arena.NewBump(make([]byte, 1<<16)), 0)
	o, err := b.NewObject(mixedLay)
	if err != nil {
		t.Fatal(err)
	}
	o.SetStr("raw", []byte(strings.Repeat("x", 64)))
	o.SetNums("nums", []uint64{1, 2, 3})
	return o, b
}

func TestVerifyCatchesOutOfRegionStringRef(t *testing.T) {
	o, b := mkCorruptible(t)
	buf := b.Region().Buf
	fl := o.Layout().FieldByName("raw")
	recOff := o.Off() + uint64(fl.Offset)
	binary.LittleEndian.PutUint64(buf[recOff:recOff+8], 1<<40)
	if err := Verify(o.View()); err == nil {
		t.Error("out-of-region string ref accepted")
	}
}

func TestVerifyCatchesImplausibleCount(t *testing.T) {
	o, b := mkCorruptible(t)
	buf := b.Region().Buf
	fl := o.Layout().FieldByName("nums")
	hdr := o.Off() + uint64(fl.Offset)
	binary.LittleEndian.PutUint64(buf[hdr+8:hdr+16], 1<<50)
	if err := Verify(o.View()); err == nil {
		t.Error("implausible array count accepted")
	}
	// A count that merely exceeds the region (but is plausible) also fails.
	o2, b2 := mkCorruptible(t)
	buf2 := b2.Region().Buf
	hdr2 := o2.Off() + uint64(fl.Offset)
	binary.LittleEndian.PutUint64(buf2[hdr2+8:hdr2+16], 60000)
	if err := Verify(o2.View()); err == nil {
		t.Error("overlong array accepted")
	}
}

func TestVerifyCatchesWrongClassID(t *testing.T) {
	o, b := mkCorruptible(t)
	buf := b.Region().Buf
	binary.LittleEndian.PutUint64(buf[o.Off():o.Off()+8], 999999)
	if err := Verify(o.View()); err == nil {
		t.Error("wrong classID accepted")
	}
}

func TestVerifyCatchesBrokenSSO(t *testing.T) {
	o, b := mkCorruptible(t)
	buf := b.Region().Buf
	if err := o.SetStr("s", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	fl := o.Layout().FieldByName("s")
	recOff := o.Off() + uint64(fl.Offset)
	binary.LittleEndian.PutUint64(buf[recOff:recOff+8], o.Off()) // wrong target
	if err := Verify(o.View()); err == nil {
		t.Error("broken SSO pointer accepted")
	}
}

func TestVerifyCatchesCyclicGraph(t *testing.T) {
	recurLay := Compute(recurDesc)
	b := NewBuilder(arena.NewBump(make([]byte, 4096)), 0)
	o, err := b.NewObject(recurLay)
	if err != nil {
		t.Fatal(err)
	}
	// Point the object at itself: infinite nesting.
	fl := recurLay.FieldByName("next")
	buf := b.Region().Buf
	binary.LittleEndian.PutUint64(buf[o.Off()+uint64(fl.Offset):], o.Off())
	word := o.Off() + uint64(recurLay.PresenceOff)
	binary.LittleEndian.PutUint32(buf[word:word+4], 1<<uint(fl.Desc.Index))
	if err := Verify(o.View()); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestVerifyCatchesNullElementRef(t *testing.T) {
	mixedLay := Compute(mixedDesc)
	smallLay := mixedLay.FieldByName("kids").Child
	b := NewBuilder(arena.NewBump(make([]byte, 1<<16)), 0)
	o, _ := b.NewObject(mixedLay)
	k, _ := b.NewObject(smallLay)
	if err := o.SetMsgs("kids", []Obj{k}); err != nil {
		t.Fatal(err)
	}
	fl := mixedLay.FieldByName("kids")
	hdr := o.Off() + uint64(fl.Offset)
	buf := b.Region().Buf
	arrRef := binary.LittleEndian.Uint64(buf[hdr : hdr+8])
	binary.LittleEndian.PutUint64(buf[arrRef:arrRef+8], NullRef)
	if err := Verify(o.View()); err == nil {
		t.Error("null element ref accepted")
	}
}

func TestVerifyObjectOutsideRegion(t *testing.T) {
	lay := Compute(smallDesc)
	reg := &Region{Buf: make([]byte, 16)}
	if err := Verify(MakeView(reg, 8, lay)); err == nil {
		t.Error("truncated object accepted")
	}
}
