// Package abi defines the binary object layout shared between the DPU and
// the host — the Go analogue of the C++ ABI compatibility contract in
// Sec. V-A of the paper.
//
// The DPU deserializes protobuf wire bytes directly into this layout inside
// a block of the shared (mirrored) buffer region; the host then reads the
// object in place with zero further copies. All cross-object references are
// *region-relative offsets*: because both sides map the same region, an
// offset written by the DPU is meaningful to the host verbatim, which is the
// paper's "a request's pointer x on the client side will have the value x on
// the server side" property without any pointer-adjustment pass.
//
// Object layout (all little-endian, 8-byte aligned, mirroring an
// Itanium-ABI C++ protobuf message):
//
//	+0              classID word  — stands in for the C++ vptr. Like the
//	                vptr, it is baked into the default instance bytes.
//	+8              presence bitfield, one bit per field, in uint32 words
//	                (the protobuf "hasbits").
//	...             fields in field-number order at natural alignment.
//
// Field representations:
//
//	bool                      1 byte
//	32-bit scalars/enum/float 4 bytes
//	64-bit scalars/double     8 bytes
//	string/bytes              32-byte record emulating libstdc++
//	                          std::string (Fig. 6): {data Ref, size u64,
//	                          union{sso [16]byte | capacity u64}}. Small
//	                          strings (<= 15 bytes) live in the sso buffer
//	                          and data points *at that buffer*, exactly like
//	                          libstdc++'s self-referential SSO pointer.
//	message                   8-byte Ref to the child object (NullRef if unset)
//	repeated scalar           16-byte {data Ref, count u64}; packed elements
//	repeated string/bytes     16-byte {data Ref, count u64}; array of 32-byte
//	                          string records
//	repeated message          16-byte {data Ref, count u64}; array of Refs
package abi

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"dpurpc/internal/protodesc"
)

// Sizes of the fixed ABI building blocks.
const (
	ClassIDSize      = 8  // the "vptr" slot
	StringRecordSize = 32 // mirrors sizeof(std::string) in libstdc++
	SSOCapacity      = 15 // max chars stored inline, as in libstdc++
	RepeatedHdrSize  = 16 // {data Ref, count}
	RefSize          = 8
	ObjectAlign      = 8
)

// NullRef marks an unset message reference. Offset 0 is reserved in every
// region (see Region) so 0 can never address a real object.
const NullRef uint64 = 0

// FieldLayout is the placement of one field within the object.
type FieldLayout struct {
	// Offset of the field slot from the object start.
	Offset uint32
	// Size of the field slot in bytes.
	Size uint32
	// ElemSize is the element width for repeated scalar fields
	// (1 for bool, 4 for 32-bit kinds, 8 for 64-bit kinds); 0 otherwise.
	ElemSize uint32
	Kind     protodesc.Kind
	Repeated bool
	// Child is the layout of the nested message type for KindMessage.
	Child *Layout
	// Desc is the field descriptor (for names and numbers).
	Desc *protodesc.Field
}

// Layout is the complete ABI description of one message class. It is the
// per-class entry of the Accelerator Description Table.
type Layout struct {
	Msg *protodesc.Message
	// ClassID identifies the class across the host/DPU boundary. IDs are
	// assigned deterministically by the ADT builder.
	ClassID uint32
	// Size of the object, rounded up to ObjectAlign.
	Size uint32
	// PresenceOff/PresenceWords locate the hasbit words.
	PresenceOff   uint32
	PresenceWords uint32
	// Fields is indexed by protodesc.Field.Index.
	Fields []FieldLayout
	// Default is the default-instance byte image: classID word set,
	// everything else zero. Copying it into fresh storage constructs an
	// empty object, vptr included — the paper's trick for initializing the
	// C++ vptr without running a constructor on the DPU.
	Default []byte
}

// scalarSlotSize returns the in-object width of a singular scalar kind.
func scalarSlotSize(k protodesc.Kind) uint32 {
	switch k {
	case protodesc.KindBool:
		return 1
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindUint32,
		protodesc.KindFixed32, protodesc.KindSfixed32, protodesc.KindFloat,
		protodesc.KindEnum:
		return 4
	default:
		return 8
	}
}

// align rounds v up to a multiple of a (a power of two).
func align(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// Compute builds the layout for msg. Nested message layouts are computed
// recursively and shared via the seen map, so recursive types (trees, lists)
// terminate. Compute is deterministic: identical descriptors yield identical
// layouts on both sides, which is the binary-compatibility assumption the
// offload relies on.
func Compute(msg *protodesc.Message) *Layout {
	return computeInto(msg, map[*protodesc.Message]*Layout{})
}

// ComputeAll builds layouts for several (possibly mutually recursive)
// messages with a shared cache, returning them in input order.
func ComputeAll(msgs []*protodesc.Message) []*Layout {
	seen := map[*protodesc.Message]*Layout{}
	out := make([]*Layout, len(msgs))
	for i, m := range msgs {
		out[i] = computeInto(m, seen)
	}
	return out
}

func computeInto(msg *protodesc.Message, seen map[*protodesc.Message]*Layout) *Layout {
	if l, ok := seen[msg]; ok {
		return l
	}
	l := &Layout{Msg: msg}
	seen[msg] = l // placed before recursion so recursive types resolve

	nf := uint32(len(msg.Fields))
	l.PresenceOff = ClassIDSize
	l.PresenceWords = (nf + 31) / 32
	off := l.PresenceOff + l.PresenceWords*4

	l.Fields = make([]FieldLayout, nf)
	for i, f := range msg.Fields {
		fl := FieldLayout{Kind: f.Kind, Repeated: f.Repeated, Desc: f}
		var size, alignment uint32
		switch {
		case f.Repeated:
			size, alignment = RepeatedHdrSize, 8
			if f.Kind.IsPackable() {
				fl.ElemSize = scalarSlotSize(f.Kind)
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			size, alignment = StringRecordSize, 8
		case f.Kind == protodesc.KindMessage:
			size, alignment = RefSize, 8
		default:
			size = scalarSlotSize(f.Kind)
			alignment = size
		}
		off = align(off, alignment)
		fl.Offset = off
		fl.Size = size
		off += size
		if f.Kind == protodesc.KindMessage {
			fl.Child = computeInto(f.Message, seen)
		}
		l.Fields[i] = fl
	}
	l.Size = align(off, ObjectAlign)
	if l.Size == 0 {
		l.Size = ObjectAlign
	}
	l.rebuildDefault()
	return l
}

// rebuildDefault regenerates the default-instance image (call after
// assigning ClassID).
func (l *Layout) rebuildDefault() {
	l.Default = make([]byte, l.Size)
	binary.LittleEndian.PutUint64(l.Default[0:8], uint64(l.ClassID))
}

// SetClassID assigns the class identifier and refreshes the default
// instance.
func (l *Layout) SetClassID(id uint32) {
	l.ClassID = id
	l.rebuildDefault()
}

// FieldByName returns the layout of the named field, or nil.
func (l *Layout) FieldByName(name string) *FieldLayout {
	f := l.Msg.FieldByName(name)
	if f == nil {
		return nil
	}
	return &l.Fields[f.Index]
}

// Fingerprint returns a hash covering every sizeof/alignof/offsetof-visible
// aspect of the layout, recursively. Two sides with equal fingerprints are
// binary-compatible in the paper's sense; the handshake compares
// fingerprints before enabling offload.
func (l *Layout) Fingerprint() uint64 {
	h := fnv.New64a()
	var walk func(*Layout, map[*Layout]bool)
	walk = func(x *Layout, seen map[*Layout]bool) {
		if seen[x] {
			return
		}
		seen[x] = true
		fmt.Fprintf(h, "%s|%d|%d|%d;", x.Msg.Name, x.Size, x.PresenceOff, x.PresenceWords)
		for _, f := range x.Fields {
			fmt.Fprintf(h, "%s:%d:%d:%d:%d:%v:%v;", f.Desc.Name, f.Desc.Number,
				f.Offset, f.Size, f.ElemSize, f.Kind, f.Repeated)
		}
		for _, f := range x.Fields {
			if f.Child != nil {
				walk(f.Child, seen)
			}
		}
	}
	walk(l, map[*Layout]bool{})
	return h.Sum64()
}

// CheckCompatible verifies that a and b describe the same binary layout —
// the sizeof/alignof/offsetof equalities of Sec. V-A — and returns a
// descriptive error at the first divergence.
func CheckCompatible(a, b *Layout) error {
	type pair struct{ a, b *Layout }
	seen := map[pair]bool{}
	var check func(a, b *Layout) error
	check = func(a, b *Layout) error {
		p := pair{a, b}
		if seen[p] {
			return nil
		}
		seen[p] = true
		if a.Msg.Name != b.Msg.Name {
			return fmt.Errorf("abi: type name mismatch: %s vs %s", a.Msg.Name, b.Msg.Name)
		}
		if a.Size != b.Size {
			return fmt.Errorf("abi: %s: sizeof mismatch: %d vs %d", a.Msg.Name, a.Size, b.Size)
		}
		if a.PresenceOff != b.PresenceOff || a.PresenceWords != b.PresenceWords {
			return fmt.Errorf("abi: %s: presence bitfield mismatch", a.Msg.Name)
		}
		if len(a.Fields) != len(b.Fields) {
			return fmt.Errorf("abi: %s: field count mismatch: %d vs %d", a.Msg.Name, len(a.Fields), len(b.Fields))
		}
		for i := range a.Fields {
			fa, fb := &a.Fields[i], &b.Fields[i]
			if fa.Desc.Name != fb.Desc.Name || fa.Desc.Number != fb.Desc.Number {
				return fmt.Errorf("abi: %s: field %d identity mismatch", a.Msg.Name, i)
			}
			if fa.Offset != fb.Offset {
				return fmt.Errorf("abi: %s.%s: offsetof mismatch: %d vs %d",
					a.Msg.Name, fa.Desc.Name, fa.Offset, fb.Offset)
			}
			if fa.Size != fb.Size || fa.ElemSize != fb.ElemSize ||
				fa.Kind != fb.Kind || fa.Repeated != fb.Repeated {
				return fmt.Errorf("abi: %s.%s: representation mismatch", a.Msg.Name, fa.Desc.Name)
			}
			if (fa.Child == nil) != (fb.Child == nil) {
				return fmt.Errorf("abi: %s.%s: child presence mismatch", a.Msg.Name, fa.Desc.Name)
			}
			if fa.Child != nil {
				if err := check(fa.Child, fb.Child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(a, b)
}

// String renders the layout like a pahole dump, for adtgen output and
// debugging.
func (l *Layout) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class %s // classID=%d size=%d align=%d\n", l.Msg.Name, l.ClassID, l.Size, ObjectAlign)
	fmt.Fprintf(&sb, "  +0   vptr/classID (8)\n")
	fmt.Fprintf(&sb, "  +%-3d hasbits (%d words)\n", l.PresenceOff, l.PresenceWords)
	fields := make([]*FieldLayout, len(l.Fields))
	for i := range l.Fields {
		fields[i] = &l.Fields[i]
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Offset < fields[j].Offset })
	for _, f := range fields {
		rep := ""
		if f.Repeated {
			rep = "repeated "
		}
		fmt.Fprintf(&sb, "  +%-3d %s%v %s (%d)\n", f.Offset, rep, f.Kind, f.Desc.Name, f.Size)
	}
	return sb.String()
}
