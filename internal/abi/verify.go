package abi

import (
	"encoding/binary"
	"fmt"
)

// Verify walks the object graph rooted at v and checks its structural
// integrity: every reference (nested objects, string data, repeated arrays)
// must lie within the region, class IDs must match the layouts, SSO string
// pointers must self-reference correctly, and the graph must be acyclic
// within the depth bound.
//
// The host can run Verify on inbound request views before dispatching them
// to business logic when it does not trust the DPU-side deserializer (e.g.
// during bring-up, or when the peer firmware is not attested). The
// deserializer's own tests guarantee it only produces verifiable objects;
// Verify is the independent check of that contract.
func Verify(v View) error {
	return verifyObj(v, 0, 64)
}

func verifyObj(v View, depth, maxDepth int) error {
	if depth >= maxDepth {
		return fmt.Errorf("abi: verify: nesting beyond %d", maxDepth)
	}
	obj := v.Reg.Slice(v.Off, uint64(v.Lay.Size))
	if obj == nil {
		return fmt.Errorf("abi: verify: object [%d,+%d) outside region", v.Off, v.Lay.Size)
	}
	if got := binary.LittleEndian.Uint64(obj[0:8]); got != uint64(v.Lay.ClassID) {
		return fmt.Errorf("abi: verify: classID %d, want %d (%s)", got, v.Lay.ClassID, v.Lay.Msg.Name)
	}
	for i := range v.Lay.Fields {
		fl := &v.Lay.Fields[i]
		if !v.Has(i) {
			continue
		}
		switch {
		case fl.Repeated:
			hdr := obj[fl.Offset : fl.Offset+RepeatedHdrSize]
			ref := binary.LittleEndian.Uint64(hdr[0:8])
			count := binary.LittleEndian.Uint64(hdr[8:16])
			if count == 0 {
				continue
			}
			if count > uint64(len(v.Reg.Buf)) {
				return fmt.Errorf("abi: verify: %s.%s: implausible count %d",
					v.Lay.Msg.Name, fl.Desc.Name, count)
			}
			var elem uint64
			switch {
			case fl.ElemSize != 0:
				elem = uint64(fl.ElemSize)
			case fl.Child != nil:
				elem = RefSize
			default:
				elem = StringRecordSize
			}
			data := v.Reg.Slice(ref, count*elem)
			if data == nil {
				return fmt.Errorf("abi: verify: %s.%s: array [%d,+%d) outside region",
					v.Lay.Msg.Name, fl.Desc.Name, ref, count*elem)
			}
			switch {
			case fl.ElemSize != 0:
				// Scalar payloads need no further checks.
			case fl.Child != nil:
				for j := uint64(0); j < count; j++ {
					childRef := binary.LittleEndian.Uint64(data[j*8:])
					if childRef == NullRef {
						return fmt.Errorf("abi: verify: %s.%s[%d]: null element",
							v.Lay.Msg.Name, fl.Desc.Name, j)
					}
					if err := verifyObj(View{Reg: v.Reg, Off: childRef, Lay: fl.Child}, depth+1, maxDepth); err != nil {
						return err
					}
				}
			default:
				for j := uint64(0); j < count; j++ {
					rec := data[j*StringRecordSize : (j+1)*StringRecordSize]
					if err := verifyStringRecord(v.Reg, ref+j*StringRecordSize, rec,
						v.Lay.Msg.Name, fl.Desc.Name); err != nil {
						return err
					}
				}
			}
		case fl.Kind.IsPackable(): // singular scalar: in-object, nothing to chase
		case fl.Child != nil:
			ref := binary.LittleEndian.Uint64(obj[fl.Offset : fl.Offset+8])
			if ref == NullRef {
				continue
			}
			if err := verifyObj(View{Reg: v.Reg, Off: ref, Lay: fl.Child}, depth+1, maxDepth); err != nil {
				return err
			}
		default: // string/bytes
			rec := obj[fl.Offset : fl.Offset+StringRecordSize]
			if err := verifyStringRecord(v.Reg, v.Off+uint64(fl.Offset), rec,
				v.Lay.Msg.Name, fl.Desc.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyStringRecord(reg *Region, recOff uint64, rec []byte, msg, field string) error {
	ref := binary.LittleEndian.Uint64(rec[0:8])
	size := binary.LittleEndian.Uint64(rec[8:16])
	if size == 0 {
		return nil
	}
	if ref == recOff+16 {
		// SSO: data lives in the record's own buffer.
		if size > SSOCapacity {
			return fmt.Errorf("abi: verify: %s.%s: SSO size %d > %d", msg, field, size, SSOCapacity)
		}
		return nil
	}
	if size <= SSOCapacity {
		return fmt.Errorf("abi: verify: %s.%s: %d-byte string not SSO", msg, field, size)
	}
	if reg.Slice(ref, size) == nil {
		return fmt.Errorf("abi: verify: %s.%s: data [%d,+%d) outside region", msg, field, ref, size)
	}
	return nil
}
