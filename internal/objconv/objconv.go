// Package objconv converts between dynamic protobuf messages
// (internal/protomsg) and shared-region ABI objects (internal/abi) without
// going through the wire format.
//
// ToArena is the building block of the response-serialization offload the
// paper sketches in Sec. III-A ("serialization can be offloaded with
// similar techniques"): the host writes the response *object* into the
// shared region, and the DPU — not the host — turns it into protobuf bytes
// for the xRPC client. FromArena is the inverse, used by tests and by
// host code that wants to lift a zero-copy view into a mutable message.
package objconv

import (
	"fmt"
	"math"

	"dpurpc/internal/abi"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protomsg"
)

// MeasureMessage returns an upper bound on the arena bytes ToArena will
// consume for m laid out as lay (object sizes, spilled strings, arrays,
// and worst-case alignment padding).
func MeasureMessage(lay *abi.Layout, m *protomsg.Message) (int, error) {
	if m.Descriptor() != lay.Msg {
		return 0, fmt.Errorf("objconv: message is %s, layout is %s",
			m.Descriptor().Name, lay.Msg.Name)
	}
	return measure(lay, m), nil
}

func measure(lay *abi.Layout, m *protomsg.Message) int {
	total := int(lay.Size) + abi.ObjectAlign
	for i := range lay.Fields {
		fl := &lay.Fields[i]
		f := fl.Desc
		switch {
		case f.Repeated && fl.ElemSize != 0:
			if n := len(m.Nums(f.Name)); n > 0 {
				total += n*int(fl.ElemSize) + 8
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			items := m.Strs(f.Name)
			if len(items) > 0 {
				total += len(items)*abi.StringRecordSize + 8
				for _, it := range items {
					if len(it) > abi.SSOCapacity {
						total += len(it)
					}
				}
			}
		case f.Repeated:
			kids := m.Msgs(f.Name)
			if len(kids) > 0 {
				total += len(kids)*abi.RefSize + 8
				for _, k := range kids {
					total += measure(fl.Child, k)
				}
			}
		case f.Kind == protodesc.KindMessage:
			if child := m.Msg(f.Name); child != nil {
				total += measure(fl.Child, child)
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			if s := m.Bytes(f.Name); len(s) > abi.SSOCapacity {
				total += len(s)
			}
		}
	}
	return total
}

// ToArena builds an ABI object from m using builder b and returns it.
func ToArena(b *abi.Builder, lay *abi.Layout, m *protomsg.Message) (abi.Obj, error) {
	return ToArenaPlaced(b, lay, m, nil)
}

// StrPlacer lets a caller divert singular string/bytes fields out of the
// arena: when it returns ok, the field's record becomes a reference to size
// bytes the caller has already placed at region offset ref (scatter-gather
// payload segments), and nothing is copied into the arena. Fields it
// declines (and every field when the placer is nil) spill normally.
type StrPlacer func(f *protodesc.Field, data []byte) (ref uint64, ok bool)

// ToArenaPlaced is ToArena with a StrPlacer applied to the root message's
// singular string/bytes fields (nested messages always spill inline — SG
// descriptors only describe top-level payload fields).
func ToArenaPlaced(b *abi.Builder, lay *abi.Layout, m *protomsg.Message, placer StrPlacer) (abi.Obj, error) {
	if m.Descriptor() != lay.Msg {
		return abi.Obj{}, fmt.Errorf("objconv: message is %s, layout is %s",
			m.Descriptor().Name, lay.Msg.Name)
	}
	obj, err := b.NewObject(lay)
	if err != nil {
		return abi.Obj{}, err
	}
	if err := fill(b, obj, lay, m, placer); err != nil {
		return abi.Obj{}, err
	}
	return obj, nil
}

func fill(b *abi.Builder, obj abi.Obj, lay *abi.Layout, m *protomsg.Message, placer StrPlacer) error {
	for i := range lay.Fields {
		fl := &lay.Fields[i]
		f := fl.Desc
		if !m.Has(f.Name) {
			continue
		}
		switch {
		case f.Repeated && fl.ElemSize != 0:
			if err := obj.SetNums(f.Name, m.Nums(f.Name)); err != nil {
				return err
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			if err := obj.SetStrs(f.Name, m.Strs(f.Name)); err != nil {
				return err
			}
		case f.Repeated:
			srcKids := m.Msgs(f.Name)
			kids := make([]abi.Obj, len(srcKids))
			for j, k := range srcKids {
				child, err := ToArena(b, fl.Child, k)
				if err != nil {
					return err
				}
				kids[j] = child
			}
			if err := obj.SetMsgs(f.Name, kids); err != nil {
				return err
			}
		case f.Kind == protodesc.KindMessage:
			child, err := ToArena(b, fl.Child, m.Msg(f.Name))
			if err != nil {
				return err
			}
			if err := obj.SetMsg(f.Name, child); err != nil {
				return err
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			data := m.Bytes(f.Name)
			if placer != nil {
				if ref, ok := placer(f, data); ok {
					if err := obj.SetStrRef(f.Name, ref, len(data)); err != nil {
						return err
					}
					continue
				}
			}
			if err := obj.SetStr(f.Name, data); err != nil {
				return err
			}
		default:
			if err := obj.SetBits(f.Name, scalarBits(m, f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// scalarBits extracts the raw slot bits of a singular scalar field.
func scalarBits(m *protomsg.Message, f *protodesc.Field) uint64 {
	switch f.Kind {
	case protodesc.KindBool:
		if m.Bool(f.Name) {
			return 1
		}
		return 0
	case protodesc.KindFloat:
		return uint64(math.Float32bits(m.Float(f.Name)))
	case protodesc.KindDouble:
		return math.Float64bits(m.Double(f.Name))
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32,
		protodesc.KindEnum:
		return uint64(uint32(m.Int32(f.Name)))
	case protodesc.KindUint32, protodesc.KindFixed32:
		return uint64(m.Uint32(f.Name))
	default:
		return m.Uint64(f.Name)
	}
}

// FromArena lifts a zero-copy view into a fresh dynamic message (deep
// copy). Presence follows the view's hasbits.
func FromArena(v abi.View) (*protomsg.Message, error) {
	if !v.Valid() {
		return nil, fmt.Errorf("objconv: invalid view")
	}
	m := protomsg.New(v.Lay.Msg)
	for i := range v.Lay.Fields {
		fl := &v.Lay.Fields[i]
		f := fl.Desc
		if !v.Has(i) {
			continue
		}
		var err error
		switch {
		case f.Repeated && fl.ElemSize != 0:
			for j, n := 0, v.Len(i); j < n; j++ {
				if err = m.AppendNum(f.Name, v.NumAt(i, j)); err != nil {
					return nil, err
				}
			}
		case f.Repeated && f.Kind == protodesc.KindString:
			for j, n := 0, v.Len(i); j < n; j++ {
				if err = m.AppendString(f.Name, string(v.StrAt(i, j))); err != nil {
					return nil, err
				}
			}
		case f.Repeated && f.Kind == protodesc.KindBytes:
			for j, n := 0, v.Len(i); j < n; j++ {
				if err = m.AppendBytes(f.Name, v.StrAt(i, j)); err != nil {
					return nil, err
				}
			}
		case f.Repeated:
			for j, n := 0, v.Len(i); j < n; j++ {
				child, ok := v.MsgAt(i, j)
				if !ok {
					return nil, fmt.Errorf("objconv: broken element ref in %s", f.Name)
				}
				cm, err := FromArena(child)
				if err != nil {
					return nil, err
				}
				if err := m.AppendMessage(f.Name, cm); err != nil {
					return nil, err
				}
			}
		case f.Kind == protodesc.KindMessage:
			child, ok := v.Msg(i)
			if !ok {
				continue
			}
			cm, err := FromArena(child)
			if err != nil {
				return nil, err
			}
			if err := m.SetMessage(f.Name, cm); err != nil {
				return nil, err
			}
		case f.Kind == protodesc.KindString:
			err = m.SetString(f.Name, string(v.Str(i)))
		case f.Kind == protodesc.KindBytes:
			err = m.SetBytes(f.Name, v.Str(i))
		case f.Kind == protodesc.KindBool:
			err = m.SetBool(f.Name, v.Bool(i))
		case f.Kind == protodesc.KindFloat:
			err = m.SetFloat(f.Name, v.F32(i))
		case f.Kind == protodesc.KindDouble:
			err = m.SetDouble(f.Name, v.F64(i))
		case f.Kind == protodesc.KindEnum:
			err = m.SetEnum(f.Name, v.I32(i))
		case f.Kind == protodesc.KindInt32, f.Kind == protodesc.KindSint32,
			f.Kind == protodesc.KindSfixed32:
			err = m.SetInt32(f.Name, v.I32(i))
		case f.Kind == protodesc.KindUint32, f.Kind == protodesc.KindFixed32:
			err = m.SetUint32(f.Name, v.U32(i))
		case f.Kind == protodesc.KindInt64, f.Kind == protodesc.KindSint64,
			f.Kind == protodesc.KindSfixed64:
			err = m.SetInt64(f.Name, v.I64(i))
		default:
			err = m.SetUint64(f.Name, v.U64(i))
		}
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}
