package objconv

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/deser"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protodsl"
	"dpurpc/internal/protomsg"
)

const schema = `
syntax = "proto3";
package t;

message Leaf {
  uint32 id = 1;
  string tag = 2;
}

message Everything {
  bool b = 1;
  int32 i32 = 2;
  sint32 s32 = 3;
  uint32 u32 = 4;
  int64 i64 = 5;
  uint64 u64 = 6;
  fixed32 f32 = 7;
  fixed64 f64 = 8;
  sfixed32 sf32 = 9;
  sfixed64 sf64 = 10;
  float fl = 11;
  double db = 12;
  string s = 13;
  bytes raw = 14;
  Leaf child = 15;
  repeated uint32 nums = 16;
  repeated string names = 17;
  repeated bytes blobs = 18;
  repeated Leaf kids = 19;
  repeated sint64 zig = 20;
}
`

var (
	leafDesc  *protodesc.Message
	everyDesc *protodesc.Message
	leafLay   *abi.Layout
	everyLay  *abi.Layout
)

func init() {
	f, err := protodsl.Parse("objconv.proto", schema)
	if err != nil {
		panic(err)
	}
	reg := protodesc.NewRegistry()
	if err := reg.Register(f); err != nil {
		panic(err)
	}
	leafDesc = reg.Message("t.Leaf")
	everyDesc = reg.Message("t.Everything")
	lays := abi.ComputeAll([]*protodesc.Message{leafDesc, everyDesc})
	leafLay, everyLay = lays[0], lays[1]
	leafLay.SetClassID(1)
	everyLay.SetClassID(2)
}

func bigMessage(t testing.TB) *protomsg.Message {
	t.Helper()
	m := protomsg.New(everyDesc)
	m.SetBool("b", true)
	m.SetInt32("i32", -42)
	m.SetInt32("s32", -7)
	m.SetUint32("u32", 3000000000)
	m.SetInt64("i64", math.MinInt64)
	m.SetUint64("u64", math.MaxUint64)
	m.SetUint32("f32", 0xdeadbeef)
	m.SetUint64("f64", 1<<60)
	m.SetInt32("sf32", -1)
	m.SetInt64("sf64", -2)
	m.SetFloat("fl", 0.5)
	m.SetDouble("db", -3.5e200)
	m.SetString("s", "short") // SSO
	m.SetBytes("raw", bytes.Repeat([]byte{9}, 100))
	child := protomsg.New(leafDesc)
	child.SetUint32("id", 7)
	child.SetString("tag", strings.Repeat("tag", 20))
	m.SetMessage("child", child)
	for i := 0; i < 40; i++ {
		m.AppendNum("nums", uint64(i*i))
	}
	m.AppendString("names", "a")
	m.AppendString("names", strings.Repeat("b", 50))
	m.AppendBytes("blobs", []byte{1, 2, 3})
	for i := 0; i < 3; i++ {
		k := protomsg.New(leafDesc)
		k.SetUint32("id", uint32(100+i))
		m.AppendMessage("kids", k)
	}
	for _, z := range []int64{-5, 5, math.MinInt64} {
		m.AppendNum("zig", uint64(z))
	}
	return m
}

func TestToArenaFromArenaRoundTrip(t *testing.T) {
	m := bigMessage(t)
	need, err := MeasureMessage(everyLay, m)
	if err != nil {
		t.Fatal(err)
	}
	b := abi.NewBuilder(arena.NewBump(make([]byte, need)), 0)
	obj, err := ToArena(b, everyLay, m)
	if err != nil {
		t.Fatal(err)
	}
	if b.Used() > need {
		t.Fatalf("MeasureMessage bound %d exceeded: %d", need, b.Used())
	}
	got, err := FromArena(obj.View())
	if err != nil {
		t.Fatal(err)
	}
	if !protomsg.Equal(m, got) {
		t.Error("ToArena/FromArena round trip diverged")
	}
}

func TestToArenaMatchesDeserializer(t *testing.T) {
	// Building from a message must produce a view whose re-serialization
	// equals the message's own canonical encoding — i.e. ToArena and the
	// wire deserializer construct equivalent objects.
	m := bigMessage(t)
	data := m.Marshal(nil)

	need, _ := MeasureMessage(everyLay, m)
	b := abi.NewBuilder(arena.NewBump(make([]byte, need)), 0)
	obj, err := ToArena(b, everyLay, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := deser.Serialize(obj.View(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("ToArena+Serialize != Marshal:\n got %x\nwant %x", out, data)
	}
}

func TestFromArenaOnDeserializedObject(t *testing.T) {
	m := bigMessage(t)
	data := m.Marshal(nil)
	needW, err := deser.MeasureExact(everyLay, data)
	if err != nil {
		t.Fatal(err)
	}
	bump := arena.NewBump(make([]byte, needW+deser.GuardBytes))
	d := deser.New(deser.Options{ValidateUTF8: true})
	off, err := d.Deserialize(everyLay, data, bump, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := abi.MakeView(&abi.Region{Buf: bump.Bytes()}, off, everyLay)
	got, err := FromArena(v)
	if err != nil {
		t.Fatal(err)
	}
	if !protomsg.Equal(m, got) {
		t.Error("FromArena of a deserialized object diverged from the source message")
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	m := protomsg.New(leafDesc)
	if _, err := MeasureMessage(everyLay, m); err == nil {
		t.Error("MeasureMessage accepted wrong type")
	}
	b := abi.NewBuilder(arena.NewBump(make([]byte, 1024)), 0)
	if _, err := ToArena(b, everyLay, m); err == nil {
		t.Error("ToArena accepted wrong type")
	}
}

func TestEmptyMessage(t *testing.T) {
	m := protomsg.New(everyDesc)
	need, _ := MeasureMessage(everyLay, m)
	b := abi.NewBuilder(arena.NewBump(make([]byte, need)), 0)
	obj, err := ToArena(b, everyLay, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromArena(obj.View())
	if err != nil {
		t.Fatal(err)
	}
	if !protomsg.Equal(m, got) {
		t.Error("empty round trip diverged")
	}
}

func TestArenaExhaustion(t *testing.T) {
	m := bigMessage(t)
	b := abi.NewBuilder(arena.NewBump(make([]byte, 64)), 0)
	if _, err := ToArena(b, everyLay, m); err == nil {
		t.Error("exhausted arena accepted")
	}
}

func TestFromArenaInvalidView(t *testing.T) {
	if _, err := FromArena(abi.View{Reg: &abi.Region{}, Lay: everyLay}); err == nil {
		t.Error("invalid view accepted")
	}
}

func TestRandomizedRoundTrips(t *testing.T) {
	rng := mt19937.New(77)
	for trial := 0; trial < 100; trial++ {
		m := protomsg.New(everyDesc)
		if rng.Uint32n(2) == 0 {
			m.SetUint32("u32", rng.Uint32())
		}
		if rng.Uint32n(2) == 0 {
			m.SetString("s", strings.Repeat("x", int(rng.Uint32n(40))))
		}
		n := int(rng.Uint32n(20))
		for i := 0; i < n; i++ {
			m.AppendNum("nums", uint64(rng.Uint32()))
		}
		if rng.Uint32n(3) == 0 {
			k := protomsg.New(leafDesc)
			k.SetUint32("id", rng.Uint32())
			m.SetMessage("child", k)
		}
		need, _ := MeasureMessage(everyLay, m)
		b := abi.NewBuilder(arena.NewBump(make([]byte, need)), 0)
		obj, err := ToArena(b, everyLay, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := FromArena(obj.View())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !protomsg.Equal(m, got) {
			t.Fatalf("trial %d: round trip diverged", trial)
		}
	}
}

func BenchmarkToArena(b *testing.B) {
	m := bigMessage(b)
	need, _ := MeasureMessage(everyLay, m)
	buf := make([]byte, need)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		builder := abi.NewBuilder(arena.NewBump(buf), 0)
		if _, err := ToArena(builder, everyLay, m); err != nil {
			b.Fatal(err)
		}
	}
}
