// Tests of the adtgen-generated typed bindings: every field shape, both
// the builder side (client) and the zero-copy view side (host handler),
// driven through a real offloaded deployment.
package gentest

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dpurpc"
)

// mirror implements the generated MirrorServer interface: it copies every
// field of the zero-copy request view into a fresh response message, which
// round-trips all 23 field shapes through view accessors and builders.
type mirror struct {
	s *dpurpc.Schema
	t *testing.T
}

func (m *mirror) Echo(req AllView) (Echoed, uint16) {
	out := NewEchoed(m.s)
	all := NewAll(m.s)
	all.SetB(req.B())
	all.SetI32(req.I32())
	all.SetS32(req.S32())
	all.SetU32(req.U32())
	all.SetI64(req.I64())
	all.SetS64(req.S64())
	all.SetU64(req.U64())
	all.SetF32(req.F32())
	all.SetSf32(req.Sf32())
	all.SetF64(req.F64())
	all.SetSf64(req.Sf64())
	all.SetFl(req.Fl())
	all.SetDb(req.Db())
	if err := all.SetS(string(req.S())); err != nil {
		return Echoed{}, 13
	}
	if err := all.SetRaw(req.Raw()); err != nil {
		return Echoed{}, 13
	}
	all.SetMode(req.Mode())
	if inner, ok := req.Inner(); ok {
		child := NewInner(m.s)
		child.SetN(inner.N())
		if err := child.SetTag(string(inner.Tag())); err != nil {
			return Echoed{}, 13
		}
		if err := all.SetInner(child); err != nil {
			return Echoed{}, 13
		}
	}
	for i := 0; i < req.NumsLen(); i++ {
		all.AddNums(req.NumsAt(i))
	}
	for i := 0; i < req.WeightsLen(); i++ {
		all.AddWeights(req.WeightsAt(i))
	}
	for i := 0; i < req.FlagsLen(); i++ {
		all.AddFlags(req.FlagsAt(i))
	}
	for i := 0; i < req.NamesLen(); i++ {
		if err := all.AddNames(string(req.NamesAt(i))); err != nil {
			return Echoed{}, 13
		}
	}
	for i := 0; i < req.BlobsLen(); i++ {
		if err := all.AddBlobs(req.BlobsAt(i)); err != nil {
			return Echoed{}, 13
		}
	}
	for i := 0; i < req.InnersLen(); i++ {
		iv, ok := req.InnersAt(i)
		if !ok {
			return Echoed{}, 13
		}
		child := NewInner(m.s)
		child.SetN(iv.N())
		if err := child.SetTag(string(iv.Tag())); err != nil {
			return Echoed{}, 13
		}
		if err := all.AddInners(child); err != nil {
			return Echoed{}, 13
		}
	}
	if err := out.SetAll(all); err != nil {
		return Echoed{}, 13
	}
	out.SetChecksum(req.U32() + uint32(req.NumsLen()))
	return out, 0
}

func buildAll(t *testing.T, s *dpurpc.Schema) All {
	t.Helper()
	a := NewAll(s)
	a.SetB(true)
	a.SetI32(-42)
	a.SetS32(-7)
	a.SetU32(4000000000)
	a.SetI64(math.MinInt64)
	a.SetS64(-99)
	a.SetU64(math.MaxUint64)
	a.SetF32(0xdeadbeef)
	a.SetSf32(-1)
	a.SetF64(1 << 60)
	a.SetSf64(-2)
	a.SetFl(1.25)
	a.SetDb(-9.5e100)
	if err := a.SetS("hello typed"); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRaw([]byte{0, 1, 0xff}); err != nil {
		t.Fatal(err)
	}
	a.SetMode(Mode_MODE_SAFE)
	inner := NewInner(s)
	inner.SetN(777)
	if err := inner.SetTag(strings.Repeat("tag", 10)); err != nil {
		t.Fatal(err)
	}
	if err := a.SetInner(inner); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a.AddNums(uint32(i * i))
	}
	a.AddWeights(2.5)
	a.AddWeights(-0.5)
	a.AddFlags(true)
	a.AddFlags(false)
	if err := a.AddNames("first"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddNames(strings.Repeat("long", 12)); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBlobs([]byte{9, 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c := NewInner(s)
		c.SetN(uint64(100 + i))
		if err := a.AddInners(c); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func checkEchoed(t *testing.T, resp Echoed) {
	t.Helper()
	all := resp.All()
	if all.M == nil {
		t.Fatal("all missing")
	}
	if !all.B() || all.I32() != -42 || all.S32() != -7 || all.U32() != 4000000000 {
		t.Error("32-bit scalars wrong")
	}
	if all.I64() != math.MinInt64 || all.S64() != -99 || all.U64() != math.MaxUint64 {
		t.Error("64-bit scalars wrong")
	}
	if all.F32() != 0xdeadbeef || all.Sf32() != -1 || all.F64() != 1<<60 || all.Sf64() != -2 {
		t.Error("fixed scalars wrong")
	}
	if all.Fl() != 1.25 || all.Db() != -9.5e100 {
		t.Error("floats wrong")
	}
	if all.S() != "hello typed" || !bytes.Equal(all.Raw(), []byte{0, 1, 0xff}) {
		t.Error("string/bytes wrong")
	}
	if all.Mode() != Mode_MODE_SAFE {
		t.Error("enum wrong")
	}
	inner := all.Inner()
	if inner.M == nil || inner.N() != 777 || inner.Tag() != strings.Repeat("tag", 10) {
		t.Error("nested wrong")
	}
	nums := all.Nums()
	if len(nums) != 30 || nums[29] != 29*29 {
		t.Error("repeated nums wrong")
	}
	w := all.Weights()
	if len(w) != 2 || w[0] != 2.5 || w[1] != -0.5 {
		t.Error("repeated doubles wrong")
	}
	f := all.Flags()
	if len(f) != 2 || !f[0] || f[1] {
		t.Error("repeated bools wrong")
	}
	if resp.Checksum() != 4000000000+30 {
		t.Errorf("checksum = %d", resp.Checksum())
	}
}

func runMirror(t *testing.T, build func(*dpurpc.Schema, map[string]dpurpc.Impl, dpurpc.StackOptions) (*dpurpc.Stack, error)) {
	t.Helper()
	s, err := LoadSchema()
	if err != nil {
		t.Fatal(err)
	}
	stack, err := build(s, RegisterMirror(&mirror{s: s, t: t}), dpurpc.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := dpurpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := MirrorClient{C: conn, S: s}
	resp, err := client.Echo(buildAll(t, s))
	if err != nil {
		t.Fatal(err)
	}
	checkEchoed(t, resp)
}

func TestGeneratedBindingsOffloaded(t *testing.T) {
	runMirror(t, dpurpc.NewOffloadedStack)
}

// TestResponseModesByteIdentical pins the wire contract of the response
// direction: the raw xRPC response payload for the same request must be
// byte-identical whether the host serializes responses itself or ships
// response objects for the DPU to serialize, whether the response path
// runs serially or through the duplex pipeline (host build workers + DPU
// serialization workers), and whether commit/doorbell coalescing is on —
// batching may change when blocks seal, never the bytes they carry.
func TestResponseModesByteIdentical(t *testing.T) {
	s, err := LoadSchema()
	if err != nil {
		t.Fatal(err)
	}
	reqBytes := buildAll(t, s).M.Marshal(nil)
	modes := []struct {
		name string
		opts dpurpc.StackOptions
	}{
		{"host-serialized serial", dpurpc.StackOptions{}},
		{"object serial", dpurpc.StackOptions{OffloadResponseSerialization: true}},
		{"object duplex", dpurpc.StackOptions{
			OffloadResponseSerialization: true, HostWorkers: 4, DPUWorkers: 4}},
		{"host-serialized duplex", dpurpc.StackOptions{HostWorkers: 4, DPUWorkers: 4}},
		{"host-serialized serial batched", dpurpc.StackOptions{CommitBatch: 8}},
		{"object serial batched", dpurpc.StackOptions{
			OffloadResponseSerialization: true, CommitBatch: 8}},
		{"object duplex batched", dpurpc.StackOptions{
			OffloadResponseSerialization: true, HostWorkers: 4, DPUWorkers: 4,
			CommitBatch: 8}},
		{"host-serialized duplex batched", dpurpc.StackOptions{
			HostWorkers: 4, DPUWorkers: 4, CommitBatch: 8}},
		// Scatter-gather framing with a tiny threshold, so the mirror's
		// string/bytes fields actually ride as descriptor-backed segments
		// in both datapath directions — the descriptors must be invisible
		// at the xRPC layer.
		{"sg serial", dpurpc.StackOptions{SGPayloadMin: 16}},
		{"sg object serial", dpurpc.StackOptions{
			OffloadResponseSerialization: true, SGPayloadMin: 16}},
		{"sg object duplex batched", dpurpc.StackOptions{
			OffloadResponseSerialization: true, HostWorkers: 4, DPUWorkers: 4,
			CommitBatch: 8, SGPayloadMin: 16}},
	}
	var want []byte
	for _, mode := range modes {
		got := func() []byte {
			stack, err := dpurpc.NewOffloadedStack(s, RegisterMirror(&mirror{s: s, t: t}), mode.opts)
			if err != nil {
				t.Fatalf("%s: %v", mode.name, err)
			}
			defer stack.Close()
			addr, err := stack.ListenAndServe("127.0.0.1:0")
			if err != nil {
				t.Fatalf("%s: %v", mode.name, err)
			}
			conn, err := dpurpc.Dial(addr)
			if err != nil {
				t.Fatalf("%s: %v", mode.name, err)
			}
			defer conn.Close()
			status, resp, err := conn.Raw().Call("/at.Mirror/Echo", reqBytes)
			if err != nil || status != 0 {
				t.Fatalf("%s: status=%d err=%v", mode.name, status, err)
			}
			return append([]byte(nil), resp...)
		}()
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatalf("%s: empty response", mode.name)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverges from %s:\n want %x\n got  %x",
				mode.name, modes[0].name, want, got)
		}
	}
}

func TestGeneratedBindingsBaseline(t *testing.T) {
	runMirror(t, dpurpc.NewBaselineStack)
}

// TestCacheHitByteIdentical pins the response cache's wire contract: a hit
// is delivered from the stored bytes without any re-serialization, so
// repeat calls of the same request must return responses byte-identical to
// the first (host-computed) one — and identical to what an uncached stack
// returns for that request. A different request must not alias into the
// same entry.
func TestCacheHitByteIdentical(t *testing.T) {
	s, err := LoadSchema()
	if err != nil {
		t.Fatal(err)
	}
	reqBytes := buildAll(t, s).M.Marshal(nil)
	other := buildAll(t, s)
	other.SetU32(123) // different request, different response checksum
	otherBytes := other.M.Marshal(nil)

	call := func(stack *dpurpc.Stack, payload []byte) []byte {
		t.Helper()
		addr, err := stack.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conn, err := dpurpc.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		status, resp, err := conn.Raw().Call("/at.Mirror/Echo", payload)
		if err != nil || status != 0 {
			t.Fatalf("status=%d err=%v", status, err)
		}
		return append([]byte(nil), resp...)
	}

	// Uncached reference bytes.
	plain, err := dpurpc.NewOffloadedStack(s, RegisterMirror(&mirror{s: s, t: t}), dpurpc.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := call(plain, reqBytes)
	plain.Close()

	stack, err := dpurpc.NewOffloadedStack(s, RegisterMirror(&mirror{s: s, t: t}),
		dpurpc.StackOptions{CacheMethods: []string{"/at.Mirror/Echo"}})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := dpurpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		status, resp, err := conn.Raw().Call("/at.Mirror/Echo", reqBytes)
		if err != nil || status != 0 {
			t.Fatalf("call %d: status=%d err=%v", i, status, err)
		}
		if !bytes.Equal(resp, want) {
			t.Fatalf("call %d diverges from the uncached response:\n want %x\n got  %x",
				i, want, resp)
		}
	}
	st := stack.Cache().Stats()
	if st.Hits < 2 {
		t.Errorf("cache hits = %d, want >= 2 (calls 2 and 3 repeat call 1)", st.Hits)
	}
	// A different request must miss and get its own (different) response.
	status, resp, err := conn.Raw().Call("/at.Mirror/Echo", otherBytes)
	if err != nil || status != 0 {
		t.Fatalf("other: status=%d err=%v", status, err)
	}
	if bytes.Equal(resp, want) {
		t.Error("different request returned the cached response of another key")
	}
}

func TestSchemaFingerprintPinned(t *testing.T) {
	s, err := LoadSchema()
	if err != nil {
		t.Fatal(err)
	}
	if s.Table.Fingerprint() != SchemaFingerprint {
		t.Error("fingerprint drifted")
	}
}

func TestEnumConstants(t *testing.T) {
	if Mode_MODE_UNSPECIFIED != 0 || Mode_MODE_FAST != 1 || Mode_MODE_SAFE != 2 {
		t.Error("enum constants wrong")
	}
}
