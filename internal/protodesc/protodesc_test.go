package protodesc

import (
	"testing"

	"dpurpc/internal/wire"
)

func TestKindFromName(t *testing.T) {
	names := []string{"bool", "int32", "sint32", "uint32", "int64", "sint64",
		"uint64", "fixed32", "sfixed32", "fixed64", "sfixed64", "float",
		"double", "string", "bytes"}
	for _, n := range names {
		k := KindFromName(n)
		if k == KindInvalid {
			t.Errorf("KindFromName(%q) invalid", n)
		}
		if k.String() != n {
			t.Errorf("Kind(%q).String() = %q", n, k.String())
		}
	}
	if KindFromName("Message") != KindInvalid || KindFromName("") != KindInvalid {
		t.Error("non-scalar names should be invalid")
	}
}

func TestWireTypes(t *testing.T) {
	cases := map[Kind]wire.Type{
		KindBool: wire.TypeVarint, KindInt32: wire.TypeVarint,
		KindSint64: wire.TypeVarint, KindEnum: wire.TypeVarint,
		KindFixed32: wire.TypeFixed32, KindSfixed32: wire.TypeFixed32,
		KindFloat: wire.TypeFixed32, KindFixed64: wire.TypeFixed64,
		KindDouble: wire.TypeFixed64, KindString: wire.TypeBytes,
		KindBytes: wire.TypeBytes, KindMessage: wire.TypeBytes,
	}
	for k, want := range cases {
		if got := k.WireType(); got != want {
			t.Errorf("%v.WireType() = %v want %v", k, got, want)
		}
	}
	if !KindSint32.IsZigZag() || !KindSint64.IsZigZag() || KindInt32.IsZigZag() {
		t.Error("IsZigZag wrong")
	}
	if KindString.IsPackable() || KindMessage.IsPackable() || !KindBool.IsPackable() {
		t.Error("IsPackable wrong")
	}
	if KindFixed32.FixedSize() != 4 || KindDouble.FixedSize() != 8 || KindInt32.FixedSize() != 0 {
		t.Error("FixedSize wrong")
	}
}

func TestNewMessageNormalization(t *testing.T) {
	m, err := NewMessage("t.M", []*Field{
		{Name: "b", Number: 3, Kind: KindInt32},
		{Name: "a", Number: 1, Kind: KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Fields[0].Name != "a" || m.Fields[0].Index != 0 {
		t.Error("fields not sorted by number")
	}
	if m.FieldByNumber(3).Name != "b" || m.FieldByName("a").Number != 1 {
		t.Error("lookup broken")
	}
	if m.FieldByNumber(99) != nil || m.FieldByName("zz") != nil {
		t.Error("missing lookup should be nil")
	}
}

func TestNewMessageErrors(t *testing.T) {
	cases := []struct {
		name   string
		fields []*Field
	}{
		{"dup number", []*Field{{Name: "a", Number: 1, Kind: KindBool}, {Name: "b", Number: 1, Kind: KindBool}}},
		{"dup name", []*Field{{Name: "a", Number: 1, Kind: KindBool}, {Name: "a", Number: 2, Kind: KindBool}}},
		{"zero number", []*Field{{Name: "a", Number: 0, Kind: KindBool}}},
		{"reserved number", []*Field{{Name: "a", Number: 19123, Kind: KindBool}}},
		{"too large", []*Field{{Name: "a", Number: wire.MaxFieldNumber + 1, Kind: KindBool}}},
		{"invalid kind", []*Field{{Name: "a", Number: 1}}},
		{"msg without type", []*Field{{Name: "a", Number: 1, Kind: KindMessage}}},
		{"enum without type", []*Field{{Name: "a", Number: 1, Kind: KindEnum}}},
		{"packed singular", []*Field{{Name: "a", Number: 1, Kind: KindInt32, Packed: true}}},
		{"packed string", []*Field{{Name: "a", Number: 1, Kind: KindString, Repeated: true, Packed: true}}},
	}
	for _, c := range cases {
		if _, err := NewMessage("t.M", c.fields); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestFieldWireType(t *testing.T) {
	f := &Field{Name: "a", Number: 1, Kind: KindInt32, Repeated: true, Packed: true}
	if f.WireType() != wire.TypeBytes {
		t.Error("packed repeated should be length-delimited")
	}
	f.Packed = false
	if f.WireType() != wire.TypeVarint {
		t.Error("unpacked repeated int should be varint")
	}
}

func TestEnumValueName(t *testing.T) {
	e := &Enum{Name: "t.E", Values: []EnumValue{{"E_ZERO", 0}, {"E_ONE", 1}}}
	if e.ValueName(1) != "E_ONE" || e.ValueName(5) != "" {
		t.Error("ValueName broken")
	}
}

func TestRegistry(t *testing.T) {
	m1, _ := NewMessage("a.M1", nil)
	m2, _ := NewMessage("a.M2", nil)
	e := &Enum{Name: "a.E", Values: []EnumValue{{"Z", 0}}}
	svc := &Service{Name: "a.S", Methods: []*Method{{Name: "Get", Input: m1, Output: m2}}}
	r := NewRegistry()
	if err := r.Register(&File{Package: "a", Messages: []*Message{m2, m1}, Enums: []*Enum{e}, Services: []*Service{svc}}); err != nil {
		t.Fatal(err)
	}
	if r.Message("a.M1") != m1 || r.Enum("a.E") != e || r.Service("a.S") != svc {
		t.Error("lookups broken")
	}
	if r.Message("a.MX") != nil {
		t.Error("missing message should be nil")
	}
	ms := r.Messages()
	if len(ms) != 2 || ms[0].Name != "a.M1" || ms[1].Name != "a.M2" {
		t.Error("Messages() not sorted")
	}
	if len(r.Services()) != 1 {
		t.Error("Services() wrong")
	}
	if svc.MethodByName("Get") == nil || svc.MethodByName("Nope") != nil {
		t.Error("MethodByName broken")
	}
	// Duplicate registration fails.
	if err := r.Register(&File{Messages: []*Message{m1}}); err == nil {
		t.Error("duplicate message registration accepted")
	}
	if err := r.Register(&File{Enums: []*Enum{e}}); err == nil {
		t.Error("duplicate enum registration accepted")
	}
	if err := r.Register(&File{Services: []*Service{svc}}); err == nil {
		t.Error("duplicate service registration accepted")
	}
}
