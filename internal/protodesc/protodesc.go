// Package protodesc defines the descriptor model for proto3 messages: field
// kinds, message and enum descriptors, and a type registry.
//
// Descriptors are the single source of truth consumed by the dynamic message
// implementation (internal/protomsg), the ABI layout engine (internal/abi),
// and the Accelerator Description Table builder (internal/adt). They play the
// role of protoc's FileDescriptorProto in the paper's toolchain.
package protodesc

import (
	"fmt"
	"sort"

	"dpurpc/internal/wire"
)

// Kind identifies a proto3 field scalar type.
type Kind uint8

// The proto3 field kinds supported by this implementation (the paper's
// subset: primitive types, strings/bytes, enums, and nested messages).
const (
	KindInvalid Kind = iota
	KindBool
	KindInt32
	KindSint32
	KindUint32
	KindInt64
	KindSint64
	KindUint64
	KindFixed32
	KindSfixed32
	KindFixed64
	KindSfixed64
	KindFloat
	KindDouble
	KindString
	KindBytes
	KindEnum
	KindMessage
)

var kindNames = [...]string{
	KindInvalid: "invalid", KindBool: "bool",
	KindInt32: "int32", KindSint32: "sint32", KindUint32: "uint32",
	KindInt64: "int64", KindSint64: "sint64", KindUint64: "uint64",
	KindFixed32: "fixed32", KindSfixed32: "sfixed32",
	KindFixed64: "fixed64", KindSfixed64: "sfixed64",
	KindFloat: "float", KindDouble: "double",
	KindString: "string", KindBytes: "bytes",
	KindEnum: "enum", KindMessage: "message",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromName maps a proto3 scalar type name to its Kind. It returns
// KindInvalid for names that are not scalar types (message/enum references
// are resolved separately by the parser).
func KindFromName(s string) Kind {
	switch s {
	case "bool":
		return KindBool
	case "int32":
		return KindInt32
	case "sint32":
		return KindSint32
	case "uint32":
		return KindUint32
	case "int64":
		return KindInt64
	case "sint64":
		return KindSint64
	case "uint64":
		return KindUint64
	case "fixed32":
		return KindFixed32
	case "sfixed32":
		return KindSfixed32
	case "fixed64":
		return KindFixed64
	case "sfixed64":
		return KindSfixed64
	case "float":
		return KindFloat
	case "double":
		return KindDouble
	case "string":
		return KindString
	case "bytes":
		return KindBytes
	}
	return KindInvalid
}

// WireType returns the wire type used for a singular value of kind k.
func (k Kind) WireType() wire.Type {
	switch k {
	case KindBool, KindInt32, KindSint32, KindUint32, KindInt64, KindSint64,
		KindUint64, KindEnum:
		return wire.TypeVarint
	case KindFixed32, KindSfixed32, KindFloat:
		return wire.TypeFixed32
	case KindFixed64, KindSfixed64, KindDouble:
		return wire.TypeFixed64
	case KindString, KindBytes, KindMessage:
		return wire.TypeBytes
	}
	return wire.TypeVarint
}

// IsVarint reports whether singular values of kind k are varint-encoded.
func (k Kind) IsVarint() bool { return k.WireType() == wire.TypeVarint }

// IsZigZag reports whether values of kind k use ZigZag encoding.
func (k Kind) IsZigZag() bool { return k == KindSint32 || k == KindSint64 }

// IsPackable reports whether a repeated field of kind k may use packed
// encoding (all numeric kinds; proto3 packs them by default).
func (k Kind) IsPackable() bool {
	switch k {
	case KindString, KindBytes, KindMessage, KindInvalid:
		return false
	}
	return true
}

// FixedSize returns the wire size of fixed-width kinds, or 0 for
// variable-width kinds.
func (k Kind) FixedSize() int {
	switch k.WireType() {
	case wire.TypeFixed32:
		return 4
	case wire.TypeFixed64:
		return 8
	}
	return 0
}

// Field describes one field of a message.
type Field struct {
	Name     string
	Number   int32
	Kind     Kind
	Repeated bool
	// Packed records whether a repeated numeric field uses packed encoding
	// on the wire. proto3 packs by default; the parser honours
	// [packed=false].
	Packed bool
	// Message is the descriptor of the value type for KindMessage fields.
	Message *Message
	// Enum is the descriptor of the value type for KindEnum fields.
	Enum *Enum
	// Index is the position of this field within Message.Fields, assigned
	// by Message.normalize. The ABI layout and presence bitfields are
	// indexed by it.
	Index int
}

// WireType returns the wire type this field's values carry on the wire
// (packed repeated fields travel as length-delimited records).
func (f *Field) WireType() wire.Type {
	if f.Repeated && f.Packed {
		return wire.TypeBytes
	}
	return f.Kind.WireType()
}

// Message describes a message type.
type Message struct {
	// Name is the fully-qualified type name (package.Message or
	// package.Outer.Inner for nested definitions).
	Name   string
	Fields []*Field

	byNumber map[int32]*Field
	byName   map[string]*Field
}

// NewMessage builds a normalized message descriptor. Fields are sorted by
// field number and indexed. It returns an error for duplicate field numbers
// or names, invalid numbers, or missing type links.
func NewMessage(name string, fields []*Field) (*Message, error) {
	m := &Message{Name: name, Fields: fields}
	if err := m.normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Message) normalize() error {
	sort.SliceStable(m.Fields, func(i, j int) bool {
		return m.Fields[i].Number < m.Fields[j].Number
	})
	m.byNumber = make(map[int32]*Field, len(m.Fields))
	m.byName = make(map[string]*Field, len(m.Fields))
	for i, f := range m.Fields {
		f.Index = i
		if f.Number < 1 || f.Number > wire.MaxFieldNumber {
			return fmt.Errorf("protodesc: %s.%s: invalid field number %d", m.Name, f.Name, f.Number)
		}
		if f.Number >= 19000 && f.Number <= 19999 {
			return fmt.Errorf("protodesc: %s.%s: field number %d is reserved", m.Name, f.Name, f.Number)
		}
		if f.Kind == KindInvalid {
			return fmt.Errorf("protodesc: %s.%s: invalid kind", m.Name, f.Name)
		}
		if f.Kind == KindMessage && f.Message == nil {
			return fmt.Errorf("protodesc: %s.%s: message field without type", m.Name, f.Name)
		}
		if f.Kind == KindEnum && f.Enum == nil {
			return fmt.Errorf("protodesc: %s.%s: enum field without type", m.Name, f.Name)
		}
		if f.Packed && (!f.Repeated || !f.Kind.IsPackable()) {
			return fmt.Errorf("protodesc: %s.%s: packed is only valid on repeated numeric fields", m.Name, f.Name)
		}
		if _, dup := m.byNumber[f.Number]; dup {
			return fmt.Errorf("protodesc: %s: duplicate field number %d", m.Name, f.Number)
		}
		if _, dup := m.byName[f.Name]; dup {
			return fmt.Errorf("protodesc: %s: duplicate field name %q", m.Name, f.Name)
		}
		m.byNumber[f.Number] = f
		m.byName[f.Name] = f
	}
	return nil
}

// FieldByNumber returns the field with the given number, or nil.
func (m *Message) FieldByNumber(n int32) *Field { return m.byNumber[n] }

// FieldByName returns the field with the given name, or nil.
func (m *Message) FieldByName(s string) *Field { return m.byName[s] }

// EnumValue is one value of an enum type.
type EnumValue struct {
	Name   string
	Number int32
}

// Enum describes an enum type. proto3 requires the first declared value to
// be zero.
type Enum struct {
	Name   string
	Values []EnumValue
}

// ValueName returns the name for number n, or "" if unknown.
func (e *Enum) ValueName(n int32) string {
	for _, v := range e.Values {
		if v.Number == n {
			return v.Name
		}
	}
	return ""
}

// Method describes one RPC of a service (unary calls only, as in the paper's
// gRPC compatibility layer).
type Method struct {
	Name   string
	Input  *Message
	Output *Message
	// ID is the procedure identifier used on the RPC-over-RDMA wire. It is
	// assigned deterministically (declaration order) by the parser so both
	// sides agree without transmitting method names per request.
	ID uint16
}

// Service describes an RPC service.
type Service struct {
	Name    string // fully qualified
	Methods []*Method
}

// MethodByName returns the method with the given short name, or nil.
func (s *Service) MethodByName(name string) *Method {
	for _, m := range s.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// File is the result of parsing one .proto file.
type File struct {
	Package  string
	Messages []*Message // all messages, including nested, fully qualified
	Enums    []*Enum
	Services []*Service
}

// Registry maps fully-qualified type names to descriptors. A Registry is the
// in-process stand-in for the set of generated .pb types linked into the
// host application.
type Registry struct {
	messages map[string]*Message
	enums    map[string]*Enum
	services map[string]*Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		messages: make(map[string]*Message),
		enums:    make(map[string]*Enum),
		services: make(map[string]*Service),
	}
}

// Register adds all types of f, failing on name collisions.
func (r *Registry) Register(f *File) error {
	for _, m := range f.Messages {
		if _, dup := r.messages[m.Name]; dup {
			return fmt.Errorf("protodesc: duplicate message %q", m.Name)
		}
		r.messages[m.Name] = m
	}
	for _, e := range f.Enums {
		if _, dup := r.enums[e.Name]; dup {
			return fmt.Errorf("protodesc: duplicate enum %q", e.Name)
		}
		r.enums[e.Name] = e
	}
	for _, s := range f.Services {
		if _, dup := r.services[s.Name]; dup {
			return fmt.Errorf("protodesc: duplicate service %q", s.Name)
		}
		r.services[s.Name] = s
	}
	return nil
}

// Message returns the message descriptor for a fully-qualified name, or nil.
func (r *Registry) Message(name string) *Message { return r.messages[name] }

// Enum returns the enum descriptor for a fully-qualified name, or nil.
func (r *Registry) Enum(name string) *Enum { return r.enums[name] }

// Service returns the service descriptor for a fully-qualified name, or nil.
func (r *Registry) Service(name string) *Service { return r.services[name] }

// Messages returns all registered messages sorted by name (deterministic
// iteration for ADT construction).
func (r *Registry) Messages() []*Message {
	out := make([]*Message, 0, len(r.messages))
	for _, m := range r.messages {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Services returns all registered services sorted by name.
func (r *Registry) Services() []*Service {
	out := make([]*Service, 0, len(r.services))
	for _, s := range r.services {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
