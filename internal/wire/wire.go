// Package wire implements the Protocol Buffers wire format primitives:
// base-128 varints, ZigZag encoding, field tags and wire types, fixed-width
// little-endian integers, and length-delimited records.
//
// The encoder and decoder here are shared by the standard one-copy
// deserializer (internal/protomsg) and by the custom arena deserializer
// (internal/deser). All functions are allocation-free.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// Type is a protobuf wire type, the low three bits of a field tag.
type Type uint8

// The wire types defined by the protobuf encoding. StartGroup/EndGroup are
// recognized (so unknown groups can be rejected cleanly) but not supported.
const (
	TypeVarint     Type = 0
	TypeFixed64    Type = 1
	TypeBytes      Type = 2 // length-delimited
	TypeStartGroup Type = 3
	TypeEndGroup   Type = 4
	TypeFixed32    Type = 5
)

func (t Type) String() string {
	switch t {
	case TypeVarint:
		return "varint"
	case TypeFixed64:
		return "fixed64"
	case TypeBytes:
		return "bytes"
	case TypeStartGroup:
		return "start_group"
	case TypeEndGroup:
		return "end_group"
	case TypeFixed32:
		return "fixed32"
	}
	return fmt.Sprintf("wiretype(%d)", uint8(t))
}

// Valid reports whether t is a wire type this implementation can decode.
func (t Type) Valid() bool {
	switch t {
	case TypeVarint, TypeFixed64, TypeBytes, TypeFixed32:
		return true
	}
	return false
}

// MaxVarintLen is the maximum number of bytes in an encoded 64-bit varint.
const MaxVarintLen = 10

// MaxFieldNumber is the largest valid protobuf field number.
const MaxFieldNumber = (1 << 29) - 1

// Errors returned by the decoding routines.
var (
	ErrTruncated    = errors.New("wire: truncated message")
	ErrOverflow     = errors.New("wire: varint overflows 64 bits")
	ErrInvalidTag   = errors.New("wire: invalid field tag")
	ErrInvalidUTF8  = errors.New("wire: invalid UTF-8 in string field")
	ErrTooLarge     = errors.New("wire: length-delimited field too large")
	ErrGroupEncoded = errors.New("wire: group encoding not supported")
)

// AppendVarint appends v to b as a base-128 varint and returns the extended
// slice.
func AppendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// PutVarint encodes v into b, which must have room (use SizeVarint), and
// returns the number of bytes written.
func PutVarint(b []byte, v uint64) int {
	n := 0
	for v >= 0x80 {
		b[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	b[n] = byte(v)
	return n + 1
}

// Uvarint decodes a base-128 varint from the start of b. It returns the
// value and the number of bytes consumed. n == 0 reports truncation and
// n < 0 reports overflow (more than 64 bits), matching the binary.Uvarint
// convention.
//
// The decode is fully unrolled — no shift counter, no per-byte loop-bound
// check, constant shifts the compiler folds — following protobuf's
// reference decoder. The first unrolled byte is the one-byte fast path: the
// overwhelming majority of tags and small field values (the paper notes
// ~90% of RPC messages are <= 512 bytes) return after a single compare.
func Uvarint(b []byte) (v uint64, n int) {
	var y uint64
	if len(b) <= 0 {
		return 0, 0
	}
	v = uint64(b[0])
	if v < 0x80 {
		return v, 1
	}
	v -= 0x80

	if len(b) <= 1 {
		return 0, 0
	}
	y = uint64(b[1])
	v += y << 7
	if y < 0x80 {
		return v, 2
	}
	v -= 0x80 << 7

	if len(b) <= 2 {
		return 0, 0
	}
	y = uint64(b[2])
	v += y << 14
	if y < 0x80 {
		return v, 3
	}
	v -= 0x80 << 14

	if len(b) <= 3 {
		return 0, 0
	}
	y = uint64(b[3])
	v += y << 21
	if y < 0x80 {
		return v, 4
	}
	v -= 0x80 << 21

	if len(b) <= 4 {
		return 0, 0
	}
	y = uint64(b[4])
	v += y << 28
	if y < 0x80 {
		return v, 5
	}
	v -= 0x80 << 28

	if len(b) <= 5 {
		return 0, 0
	}
	y = uint64(b[5])
	v += y << 35
	if y < 0x80 {
		return v, 6
	}
	v -= 0x80 << 35

	if len(b) <= 6 {
		return 0, 0
	}
	y = uint64(b[6])
	v += y << 42
	if y < 0x80 {
		return v, 7
	}
	v -= 0x80 << 42

	if len(b) <= 7 {
		return 0, 0
	}
	y = uint64(b[7])
	v += y << 49
	if y < 0x80 {
		return v, 8
	}
	v -= 0x80 << 49

	if len(b) <= 8 {
		return 0, 0
	}
	y = uint64(b[8])
	v += y << 56
	if y < 0x80 {
		return v, 9
	}
	v -= 0x80 << 56

	if len(b) <= 9 {
		return 0, 0
	}
	y = uint64(b[9])
	v += y << 63
	if y < 2 {
		// The 10th byte may only contribute one bit.
		return v, 10
	}
	return 0, -MaxVarintLen
}

// Varint is Uvarint under its historical name.
func Varint(b []byte) (uint64, int) {
	return Uvarint(b)
}

// SizeVarint returns the encoded size of v in bytes (1..10).
func SizeVarint(v uint64) int {
	// 1 + floor(bits/7): computed without branches via bit length.
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodeZigZag maps a signed integer to an unsigned integer so that numbers
// with small absolute value have small varint encodings (sint32/sint64).
func EncodeZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// DecodeZigZag is the inverse of EncodeZigZag.
func DecodeZigZag(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// AppendTag appends the tag for the given field number and wire type.
func AppendTag(b []byte, fieldNum int32, t Type) []byte {
	return AppendVarint(b, uint64(fieldNum)<<3|uint64(t))
}

// SizeTag returns the encoded size of a field tag.
func SizeTag(fieldNum int32) int {
	return SizeVarint(uint64(fieldNum) << 3)
}

// DecodeTag splits a decoded tag varint into field number and wire type.
// It returns an error for field number 0 or out-of-range numbers.
func DecodeTag(v uint64) (fieldNum int32, t Type, err error) {
	num := v >> 3
	if num == 0 || num > MaxFieldNumber {
		return 0, 0, ErrInvalidTag
	}
	return int32(num), Type(v & 7), nil
}

// Tag decodes the field tag at the start of b — a fused Uvarint+DecodeTag
// with a one-byte fast path for field numbers 1..15 (the overwhelmingly
// common case), replacing the two calls and the shift/range work of the
// split decode with a single call. On error, ErrInvalidTag reports a zero
// or out-of-range field number; any other error reports a truncated or
// overflowing tag varint.
func Tag(b []byte) (fieldNum int32, t Type, n int, err error) {
	if len(b) > 0 && b[0] >= 8 && b[0] < 0x80 {
		return int32(b[0] >> 3), Type(b[0] & 7), 1, nil
	}
	return tagSlow(b)
}

func tagSlow(b []byte) (int32, Type, int, error) {
	v, n := Uvarint(b)
	if n <= 0 {
		return 0, 0, 0, varintErr(n)
	}
	num, t, err := DecodeTag(v)
	if err != nil {
		return 0, 0, 0, err
	}
	return num, t, n, nil
}

// AppendFixed32 appends v in little-endian byte order.
func AppendFixed32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendFixed64 appends v in little-endian byte order.
func AppendFixed64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Fixed32 decodes a little-endian uint32 from the start of b.
func Fixed32(b []byte) (uint32, int) {
	if len(b) < 4 {
		return 0, 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, 4
}

// Fixed64 decodes a little-endian uint64 from the start of b.
func Fixed64(b []byte) (uint64, int) {
	if len(b) < 8 {
		return 0, 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, 8
}

// AppendFloat32 appends the IEEE 754 bits of v.
func AppendFloat32(b []byte, v float32) []byte {
	return AppendFixed32(b, math.Float32bits(v))
}

// AppendFloat64 appends the IEEE 754 bits of v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendFixed64(b, math.Float64bits(v))
}

// AppendBytes appends a length-delimited record (length varint + payload).
func AppendBytes(b, payload []byte) []byte {
	b = AppendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// AppendString appends a length-delimited string record.
func AppendString(b []byte, s string) []byte {
	b = AppendVarint(b, uint64(len(s)))
	return append(b, s...)
}

// SizeBytes returns the encoded size of a length-delimited record carrying n
// payload bytes (excluding the field tag).
func SizeBytes(n int) int {
	return SizeVarint(uint64(n)) + n
}

// Bytes decodes a length-delimited record from the start of b, returning the
// payload (aliasing b) and the total bytes consumed. n == 0 reports
// truncation.
func Bytes(b []byte) (payload []byte, n int) {
	l, ln := Uvarint(b)
	if ln <= 0 {
		return nil, 0
	}
	if l > uint64(len(b)-ln) {
		return nil, 0
	}
	return b[ln : ln+int(l)], ln + int(l)
}

// SkipValue skips over a single value of wire type t at the start of b and
// returns the number of bytes skipped. It returns an error for truncated
// input, group encoding, or an invalid wire type.
func SkipValue(b []byte, t Type) (int, error) {
	switch t {
	case TypeVarint:
		_, n := Uvarint(b)
		if n <= 0 {
			return 0, varintErr(n)
		}
		return n, nil
	case TypeFixed64:
		if len(b) < 8 {
			return 0, ErrTruncated
		}
		return 8, nil
	case TypeFixed32:
		if len(b) < 4 {
			return 0, ErrTruncated
		}
		return 4, nil
	case TypeBytes:
		_, n := Bytes(b)
		if n == 0 {
			return 0, ErrTruncated
		}
		return n, nil
	case TypeStartGroup, TypeEndGroup:
		return 0, ErrGroupEncoded
	}
	return 0, fmt.Errorf("wire: cannot skip wire type %v", t)
}

func varintErr(n int) error {
	if n < 0 {
		return ErrOverflow
	}
	return ErrTruncated
}

// Decoder is a cursor over an encoded protobuf message. It never copies the
// underlying buffer; Bytes results alias the input.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a Decoder reading from b.
func NewDecoder(b []byte) Decoder {
	return Decoder{buf: b}
}

// Len returns the number of bytes remaining.
func (d *Decoder) Len() int { return len(d.buf) - d.pos }

// Pos returns the current offset from the start of the buffer.
func (d *Decoder) Pos() int { return d.pos }

// Done reports whether the decoder has consumed the whole buffer.
func (d *Decoder) Done() bool { return d.pos >= len(d.buf) }

// Tag decodes the next field tag.
func (d *Decoder) Tag() (fieldNum int32, t Type, err error) {
	v, err := d.Varint()
	if err != nil {
		return 0, 0, err
	}
	return DecodeTag(v)
}

// Varint decodes the next varint.
func (d *Decoder) Varint() (uint64, error) {
	v, n := Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, varintErr(n)
	}
	d.pos += n
	return v, nil
}

// Fixed32 decodes the next little-endian uint32.
func (d *Decoder) Fixed32() (uint32, error) {
	v, n := Fixed32(d.buf[d.pos:])
	if n == 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return v, nil
}

// Fixed64 decodes the next little-endian uint64.
func (d *Decoder) Fixed64() (uint64, error) {
	v, n := Fixed64(d.buf[d.pos:])
	if n == 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return v, nil
}

// Bytes decodes the next length-delimited record; the result aliases the
// decoder's buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	p, n := Bytes(d.buf[d.pos:])
	if n == 0 {
		return nil, ErrTruncated
	}
	d.pos += n
	return p, nil
}

// Skip skips one value of wire type t.
func (d *Decoder) Skip(t Type) error {
	n, err := SkipValue(d.buf[d.pos:], t)
	if err != nil {
		return err
	}
	d.pos += n
	return nil
}
