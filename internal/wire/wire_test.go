package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 300, 16383, 16384, 1<<21 - 1, 1 << 21,
		1<<28 - 1, 1 << 28, 1<<35 - 1, 1 << 35, 1<<63 - 1, 1 << 63, math.MaxUint64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		if got := SizeVarint(v); got != len(b) {
			t.Errorf("SizeVarint(%d) = %d, encoded %d bytes", v, got, len(b))
		}
		dv, n := Varint(b)
		if n != len(b) || dv != v {
			t.Errorf("Varint(%x) = %d,%d want %d,%d", b, dv, n, v, len(b))
		}
	}
}

func TestVarintMatchesBinaryUvarint(t *testing.T) {
	f := func(v uint64) bool {
		ours := AppendVarint(nil, v)
		std := binary.AppendUvarint(nil, v)
		if !bytes.Equal(ours, std) {
			return false
		}
		dv, n := Varint(ours)
		sv, sn := binary.Uvarint(ours)
		return dv == sv && n == sn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPutVarint(t *testing.T) {
	var buf [MaxVarintLen]byte
	for _, v := range []uint64{0, 5, 1 << 20, math.MaxUint64} {
		n := PutVarint(buf[:], v)
		want := AppendVarint(nil, v)
		if !bytes.Equal(buf[:n], want) {
			t.Errorf("PutVarint(%d) = %x want %x", v, buf[:n], want)
		}
	}
}

func TestVarintTruncated(t *testing.T) {
	full := AppendVarint(nil, 1<<40)
	for i := 0; i < len(full); i++ {
		if _, n := Varint(full[:i]); n != 0 {
			t.Errorf("Varint of %d-byte prefix: n=%d, want 0", i, n)
		}
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 continuation bytes: overflows 64 bits.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, n := Varint(b); n >= 0 {
		t.Errorf("overflowing varint: n=%d, want negative", n)
	}
	// 10 bytes with final byte > 1 also overflows.
	b = append(bytes.Repeat([]byte{0x80}, 9), 0x02)
	if _, n := Varint(b); n >= 0 {
		t.Errorf("10-byte overflow varint: n=%d, want negative", n)
	}
	// 10 bytes with final byte == 1 is exactly max.
	b = append(bytes.Repeat([]byte{0xff}, 9), 0x01)
	v, n := Varint(b)
	if n != 10 || v != math.MaxUint64 {
		t.Errorf("max varint: got %d,%d", v, n)
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int64]uint64{
		0: 0, -1: 1, 1: 2, -2: 3, 2: 4,
		math.MaxInt64: math.MaxUint64 - 1, math.MinInt64: math.MaxUint64,
	}
	for in, want := range cases {
		if got := EncodeZigZag(in); got != want {
			t.Errorf("EncodeZigZag(%d) = %d want %d", in, got, want)
		}
		if got := DecodeZigZag(want); got != in {
			t.Errorf("DecodeZigZag(%d) = %d want %d", want, got, in)
		}
	}
}

func TestZigZagRoundTripQuick(t *testing.T) {
	f := func(v int64) bool { return DecodeZigZag(EncodeZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, num := range []int32{1, 2, 15, 16, 2047, 2048, MaxFieldNumber} {
		for _, wt := range []Type{TypeVarint, TypeFixed64, TypeBytes, TypeFixed32} {
			b := AppendTag(nil, num, wt)
			if got := SizeTag(num); got != len(b) {
				t.Errorf("SizeTag(%d) = %d, encoded %d", num, got, len(b))
			}
			v, n := Varint(b)
			if n != len(b) {
				t.Fatalf("tag varint decode failed")
			}
			gn, gt, err := DecodeTag(v)
			if err != nil || gn != num || gt != wt {
				t.Errorf("DecodeTag(%d/%v) = %d,%v,%v", num, wt, gn, gt, err)
			}
		}
	}
}

func TestDecodeTagInvalid(t *testing.T) {
	if _, _, err := DecodeTag(0); err == nil {
		t.Error("field number 0 accepted")
	}
	if _, _, err := DecodeTag(uint64(MaxFieldNumber+1) << 3); err == nil {
		t.Error("field number 2^29 accepted")
	}
}

func TestFixedRoundTrip(t *testing.T) {
	b := AppendFixed32(nil, 0xdeadbeef)
	v32, n := Fixed32(b)
	if n != 4 || v32 != 0xdeadbeef {
		t.Errorf("Fixed32 = %x,%d", v32, n)
	}
	b = AppendFixed64(nil, 0x0123456789abcdef)
	v64, n := Fixed64(b)
	if n != 8 || v64 != 0x0123456789abcdef {
		t.Errorf("Fixed64 = %x,%d", v64, n)
	}
	// Little-endian on the wire, per Sec. IV-A of the paper.
	if b[0] != 0xef {
		t.Errorf("fixed64 first byte = %x, want little-endian 0xef", b[0])
	}
	if _, n := Fixed32([]byte{1, 2, 3}); n != 0 {
		t.Error("truncated fixed32 accepted")
	}
	if _, n := Fixed64([]byte{1, 2, 3, 4, 5, 6, 7}); n != 0 {
		t.Error("truncated fixed64 accepted")
	}
}

func TestFloatBits(t *testing.T) {
	b := AppendFloat64(nil, 1.5)
	v, _ := Fixed64(b)
	if math.Float64frombits(v) != 1.5 {
		t.Error("float64 round trip failed")
	}
	b = AppendFloat32(nil, -2.25)
	v32, _ := Fixed32(b)
	if math.Float32frombits(v32) != -2.25 {
		t.Error("float32 round trip failed")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 300)}
	for _, p := range payloads {
		b := AppendBytes(nil, p)
		if SizeBytes(len(p)) != len(b) {
			t.Errorf("SizeBytes(%d) = %d, encoded %d", len(p), SizeBytes(len(p)), len(b))
		}
		got, n := Bytes(b)
		if n != len(b) || !bytes.Equal(got, p) {
			t.Errorf("Bytes round trip failed for %d-byte payload", len(p))
		}
	}
}

func TestBytesTruncated(t *testing.T) {
	b := AppendBytes(nil, []byte("hello"))
	for i := 0; i < len(b); i++ {
		if _, n := Bytes(b[:i]); n != 0 {
			t.Errorf("truncated Bytes at %d accepted", i)
		}
	}
	// Declared length longer than the buffer.
	if _, n := Bytes([]byte{0xff, 0x01, 'a'}); n != 0 {
		t.Error("over-long declared length accepted")
	}
}

func TestAppendString(t *testing.T) {
	b := AppendString(nil, "héllo")
	got, n := Bytes(b)
	if n != len(b) || string(got) != "héllo" {
		t.Error("AppendString round trip failed")
	}
}

func TestSkipValue(t *testing.T) {
	var b []byte
	b = AppendVarint(b, 300)
	b = AppendFixed64(b, 7)
	b = AppendBytes(b, []byte("abc"))
	b = AppendFixed32(b, 9)

	off := 0
	for _, wt := range []Type{TypeVarint, TypeFixed64, TypeBytes, TypeFixed32} {
		n, err := SkipValue(b[off:], wt)
		if err != nil {
			t.Fatalf("SkipValue(%v): %v", wt, err)
		}
		off += n
	}
	if off != len(b) {
		t.Errorf("skipped %d bytes, want %d", off, len(b))
	}
	if _, err := SkipValue(nil, TypeVarint); err == nil {
		t.Error("skip of empty varint accepted")
	}
	if _, err := SkipValue([]byte{1}, TypeStartGroup); err != ErrGroupEncoded {
		t.Errorf("group skip error = %v", err)
	}
	if _, err := SkipValue([]byte{1}, Type(7)); err == nil {
		t.Error("invalid wire type accepted")
	}
}

func TestDecoderWalk(t *testing.T) {
	var b []byte
	b = AppendTag(b, 1, TypeVarint)
	b = AppendVarint(b, 150)
	b = AppendTag(b, 2, TypeBytes)
	b = AppendString(b, "testing")
	b = AppendTag(b, 3, TypeFixed32)
	b = AppendFixed32(b, 42)

	d := NewDecoder(b)
	num, wt, err := d.Tag()
	if err != nil || num != 1 || wt != TypeVarint {
		t.Fatalf("tag1: %d %v %v", num, wt, err)
	}
	v, err := d.Varint()
	if err != nil || v != 150 {
		t.Fatalf("varint: %d %v", v, err)
	}
	num, wt, _ = d.Tag()
	if num != 2 || wt != TypeBytes {
		t.Fatalf("tag2: %d %v", num, wt)
	}
	s, err := d.Bytes()
	if err != nil || string(s) != "testing" {
		t.Fatalf("bytes: %q %v", s, err)
	}
	num, wt, _ = d.Tag()
	if num != 3 || wt != TypeFixed32 {
		t.Fatalf("tag3: %d %v", num, wt)
	}
	f, err := d.Fixed32()
	if err != nil || f != 42 {
		t.Fatalf("fixed32: %d %v", f, err)
	}
	if !d.Done() {
		t.Error("decoder not done")
	}
}

func TestDecoderSkipUnknown(t *testing.T) {
	var b []byte
	b = AppendTag(b, 99, TypeBytes)
	b = AppendBytes(b, []byte("unknown"))
	b = AppendTag(b, 1, TypeVarint)
	b = AppendVarint(b, 7)

	d := NewDecoder(b)
	_, wt, _ := d.Tag()
	if err := d.Skip(wt); err != nil {
		t.Fatal(err)
	}
	num, _, _ := d.Tag()
	if num != 1 {
		t.Fatalf("after skip, field = %d", num)
	}
	v, _ := d.Varint()
	if v != 7 {
		t.Fatalf("after skip, value = %d", v)
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder([]byte{0x80}) // truncated varint
	if _, err := d.Varint(); err != ErrTruncated {
		t.Errorf("truncated varint err = %v", err)
	}
	d = NewDecoder(nil)
	if _, err := d.Fixed32(); err != ErrTruncated {
		t.Errorf("empty fixed32 err = %v", err)
	}
	if _, err := d.Fixed64(); err != ErrTruncated {
		t.Errorf("empty fixed64 err = %v", err)
	}
	if _, err := d.Bytes(); err != ErrTruncated {
		t.Errorf("empty bytes err = %v", err)
	}
	if _, _, err := d.Tag(); err != ErrTruncated {
		t.Errorf("empty tag err = %v", err)
	}
}

func TestWireTypeStrings(t *testing.T) {
	if TypeVarint.String() != "varint" || Type(7).String() == "" {
		t.Error("Type.String broken")
	}
	if !TypeBytes.Valid() || TypeStartGroup.Valid() || Type(7).Valid() {
		t.Error("Type.Valid broken")
	}
}

func BenchmarkVarintDecode(b *testing.B) {
	buf := AppendVarint(nil, 1<<34)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		Varint(buf)
	}
}

func BenchmarkVarintDecodeSmall(b *testing.B) {
	buf := AppendVarint(nil, 42)
	for i := 0; i < b.N; i++ {
		Varint(buf)
	}
}

func BenchmarkVarintEncode(b *testing.B) {
	var buf [MaxVarintLen]byte
	for i := 0; i < b.N; i++ {
		PutVarint(buf[:], uint64(i)<<20)
	}
}

func TestUvarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 0x7f, 0x80, 300, 1 << 20, 1<<64 - 1} {
		buf := AppendVarint(nil, v)
		got, n := Uvarint(buf)
		if got != v || n != len(buf) {
			t.Errorf("Uvarint(%x) = %d, %d; want %d, %d", buf, got, n, v, len(buf))
		}
		// Varint must agree byte for byte.
		got2, n2 := Varint(buf)
		if got2 != got || n2 != n {
			t.Errorf("Varint(%x) = %d, %d disagrees with Uvarint", buf, got2, n2)
		}
	}
	if _, n := Uvarint(nil); n != 0 {
		t.Errorf("Uvarint(nil) n = %d, want 0", n)
	}
	if _, n := Uvarint([]byte{0x80, 0x80}); n != 0 {
		t.Errorf("Uvarint(truncated) n = %d, want 0", n)
	}
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, n := Uvarint(over); n >= 0 {
		t.Errorf("Uvarint(overflow) n = %d, want < 0", n)
	}
}

func TestTagFused(t *testing.T) {
	// The fused Tag must agree with the split Varint+DecodeTag decode on
	// every field number boundary the fast path touches and beyond.
	for _, num := range []int32{1, 2, 15, 16, 100, 1 << 10, MaxFieldNumber} {
		for _, wt := range []Type{TypeVarint, TypeFixed64, TypeBytes, TypeFixed32} {
			buf := AppendTag(nil, num, wt)
			gn, gt, n, err := Tag(buf)
			if err != nil || gn != num || gt != wt || n != len(buf) {
				t.Errorf("Tag(%x) = %d, %v, %d, %v; want %d, %v, %d, nil",
					buf, gn, gt, n, err, num, wt, len(buf))
			}
		}
	}
	// Field number 0 is invalid in both one-byte and multi-byte encodings.
	for _, buf := range [][]byte{{0x00}, {0x02}, {0x80, 0x00}} {
		if _, _, _, err := Tag(buf); err != ErrInvalidTag {
			t.Errorf("Tag(%x) err = %v, want ErrInvalidTag", buf, err)
		}
	}
	if _, _, _, err := Tag(nil); err != ErrTruncated {
		t.Errorf("Tag(nil) err = %v, want ErrTruncated", err)
	}
	if _, _, _, err := Tag([]byte{0x80}); err != ErrTruncated {
		t.Errorf("Tag(truncated) err = %v, want ErrTruncated", err)
	}
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	if _, _, _, err := Tag(over); err != ErrOverflow {
		t.Errorf("Tag(overflow) err = %v, want ErrOverflow", err)
	}
	// Out-of-range field number (> MaxFieldNumber).
	big := AppendVarint(nil, uint64(MaxFieldNumber+1)<<3)
	if _, _, _, err := Tag(big); err != ErrInvalidTag {
		t.Errorf("Tag(out-of-range) err = %v, want ErrInvalidTag", err)
	}
}

// tagStream is a realistic run of one-byte tags (field numbers 1..15) as
// produced by typical small RPC messages.
func tagStream() []byte {
	var buf []byte
	for i := 0; i < 64; i++ {
		buf = AppendTag(buf, int32(i%15)+1, TypeVarint)
	}
	return buf
}

func BenchmarkUvarintOneByte(b *testing.B) {
	buf := AppendVarint(nil, 42)
	for i := 0; i < b.N; i++ {
		Uvarint(buf)
	}
}

func BenchmarkUvarintMultiByte(b *testing.B) {
	buf := AppendVarint(nil, 1<<34)
	for i := 0; i < b.N; i++ {
		Uvarint(buf)
	}
}

// BenchmarkTagFused vs BenchmarkTagSplit measures the satellite-1 delta:
// one fused call with a one-byte fast path against the historical
// Varint-then-DecodeTag pair over the same one-byte-heavy tag stream.
func BenchmarkTagFused(b *testing.B) {
	buf := tagStream()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		pos := 0
		for pos < len(buf) {
			_, _, n, err := Tag(buf[pos:])
			if err != nil {
				b.Fatal(err)
			}
			pos += n
		}
	}
}

func BenchmarkTagSplit(b *testing.B) {
	buf := tagStream()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		pos := 0
		for pos < len(buf) {
			v, n := Varint(buf[pos:])
			if n <= 0 {
				b.Fatal("bad varint")
			}
			if _, _, err := DecodeTag(v); err != nil {
				b.Fatal(err)
			}
			pos += n
		}
	}
}
