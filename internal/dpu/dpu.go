// Package dpu models the testbed machine of Table I — a PowerEdge host with
// a BlueField-3 DPU — and performs the bottleneck analysis that converts
// the datapath's measured operation counts into the metrics of Fig. 8:
// requests per second, PCIe bandwidth, and host CPU usage.
//
// The analysis is a standard throughput model: the datapath's total work is
// charged to three resources (host cores, DPU cores, the PCIe link); the
// sustained duration of the run is set by the busiest resource; every other
// metric follows. The paper observes "an even workload distribution between
// the cores" (Sec. VI-C), which is what dividing aggregate core-time by the
// core count assumes.
package dpu

import (
	"dpurpc/internal/cpumodel"
	"dpurpc/internal/fabric"
)

// Machine is the simulated testbed.
type Machine struct {
	Host *cpumodel.Platform
	DPU  *cpumodel.Platform
	// LinkBandwidthGbps is the host<->DPU PCIe datapath capacity.
	LinkBandwidthGbps float64
}

// Default returns the Table I machine.
func Default() *Machine {
	return &Machine{
		Host:              cpumodel.HostX86(),
		DPU:               cpumodel.DPUBlueField3(),
		LinkBandwidthGbps: fabric.DefaultBandwidthGbps,
	}
}

// Usage is the total work of one benchmark run.
type Usage struct {
	Requests  uint64
	HostNS    float64 // aggregate host core-time
	DPUNS     float64 // aggregate DPU core-time
	LinkBytes uint64  // PCIe bytes (payload + framing overhead)
	// DPUWorkers, when > 0, bounds how many DPU cores the deployment can
	// actually keep busy (total pipeline workers across connections). 0
	// means the paper's ideal even spread over every DPU core.
	DPUWorkers int
	// HostWorkers, when > 0, bounds how many host cores the deployment can
	// actually keep busy (total duplex response workers across
	// connections). 0 means the ideal even spread over every host core.
	HostWorkers int
}

// Result is one row of Fig. 8.
type Result struct {
	Requests uint64
	// SimSeconds is the modeled duration of the run.
	SimSeconds float64
	// RPS is requests per second (Fig. 8a).
	RPS float64
	// BandwidthGbps is the average PCIe utilization (Fig. 8b).
	BandwidthGbps float64
	// HostCores / DPUCores are the average busy-core counts (Fig. 8c).
	HostCores float64
	DPUCores  float64
	// Bottleneck names the saturated resource.
	Bottleneck string
}

// Analyze performs the bottleneck analysis.
func (m *Machine) Analyze(u Usage) Result {
	hostTime := u.HostNS / float64(m.Host.EffectiveCores(u.HostWorkers))
	dpuTime := u.DPUNS / float64(m.DPU.EffectiveCores(u.DPUWorkers))
	linkTime := float64(u.LinkBytes) * 8 / m.LinkBandwidthGbps // ns

	simNS := hostTime
	bottleneck := "host-cpu"
	if dpuTime > simNS {
		simNS = dpuTime
		bottleneck = "dpu-cpu"
	}
	if linkTime > simNS {
		simNS = linkTime
		bottleneck = "pcie"
	}
	if simNS <= 0 {
		return Result{Requests: u.Requests, Bottleneck: "idle"}
	}
	return Result{
		Requests:      u.Requests,
		SimSeconds:    simNS / 1e9,
		RPS:           float64(u.Requests) / simNS * 1e9,
		BandwidthGbps: float64(u.LinkBytes) * 8 / simNS,
		HostCores:     u.HostNS / simNS,
		DPUCores:      u.DPUNS / simNS,
		Bottleneck:    bottleneck,
	}
}
