package dpu

import (
	"math"
	"testing"
)

func TestAnalyzeHostBound(t *testing.T) {
	m := Default()
	// 1e6 requests, 88.75ns each on the host, tiny elsewhere.
	u := Usage{Requests: 1e6, HostNS: 88.75e6, DPUNS: 1e6, LinkBytes: 1000}
	r := m.Analyze(u)
	if r.Bottleneck != "host-cpu" {
		t.Fatalf("bottleneck = %s", r.Bottleneck)
	}
	wantRPS := 8.0 / 88.75e-9
	if math.Abs(r.RPS-wantRPS)/wantRPS > 1e-9 {
		t.Errorf("RPS = %g want %g", r.RPS, wantRPS)
	}
	if math.Abs(r.HostCores-8) > 1e-9 {
		t.Errorf("host cores = %g, want saturation at 8", r.HostCores)
	}
	if r.DPUCores >= 1 {
		t.Errorf("dpu cores = %g", r.DPUCores)
	}
}

func TestAnalyzeDPUBound(t *testing.T) {
	m := Default()
	u := Usage{Requests: 1e6, HostNS: 1e6, DPUNS: 200e6, LinkBytes: 1000}
	r := m.Analyze(u)
	if r.Bottleneck != "dpu-cpu" {
		t.Fatalf("bottleneck = %s", r.Bottleneck)
	}
	if math.Abs(r.DPUCores-16) > 1e-9 {
		t.Errorf("dpu cores = %g, want 16", r.DPUCores)
	}
}

func TestAnalyzeWorkerCap(t *testing.T) {
	m := Default()
	// DPU-bound run with only 4 pipeline workers: the same aggregate DPU
	// core-time must stretch over 4 cores, not 16 — a 4x longer run.
	base := Usage{Requests: 1e6, HostNS: 1e6, DPUNS: 200e6, LinkBytes: 1000}
	capped := base
	capped.DPUWorkers = 4
	full := m.Analyze(base)
	r := m.Analyze(capped)
	if r.Bottleneck != "dpu-cpu" {
		t.Fatalf("bottleneck = %s", r.Bottleneck)
	}
	if math.Abs(r.SimSeconds-4*full.SimSeconds)/full.SimSeconds > 1e-9 {
		t.Errorf("capped run %gs, want 4x the even-spread %gs", r.SimSeconds, full.SimSeconds)
	}
	if math.Abs(r.DPUCores-4) > 1e-9 {
		t.Errorf("dpu cores = %g, want saturation at the 4 workers", r.DPUCores)
	}
	// Worker counts at or beyond the platform collapse to the ideal spread,
	// as does the legacy zero value.
	for _, w := range []int{0, 16, 64} {
		u := base
		u.DPUWorkers = w
		if got := m.Analyze(u); got != full {
			t.Errorf("DPUWorkers=%d result %+v != even spread %+v", w, got, full)
		}
	}
}

func TestAnalyzePCIeBound(t *testing.T) {
	m := Default()
	// 1 GB over a 200 Gb/s link takes 40ms; make core time smaller.
	u := Usage{Requests: 1e5, HostNS: 1e6, DPUNS: 1e6, LinkBytes: 1 << 30}
	r := m.Analyze(u)
	if r.Bottleneck != "pcie" {
		t.Fatalf("bottleneck = %s", r.Bottleneck)
	}
	if math.Abs(r.BandwidthGbps-m.LinkBandwidthGbps) > 1e-6 {
		t.Errorf("bandwidth = %g, want saturation at %g", r.BandwidthGbps, m.LinkBandwidthGbps)
	}
}

func TestAnalyzeConsistency(t *testing.T) {
	m := Default()
	u := Usage{Requests: 12345, HostNS: 5e6, DPUNS: 9e6, LinkBytes: 1 << 20}
	r := m.Analyze(u)
	// RPS * SimSeconds == Requests.
	if got := r.RPS * r.SimSeconds; math.Abs(got-float64(u.Requests)) > 1e-6 {
		t.Errorf("RPS*T = %g want %d", got, u.Requests)
	}
	// Core counts never exceed the machine.
	if r.HostCores > float64(m.Host.Cores)+1e-9 || r.DPUCores > float64(m.DPU.Cores)+1e-9 {
		t.Error("core usage exceeds machine size")
	}
	if r.BandwidthGbps > m.LinkBandwidthGbps+1e-9 {
		t.Error("bandwidth exceeds link capacity")
	}
}

func TestAnalyzeIdle(t *testing.T) {
	r := Default().Analyze(Usage{Requests: 5})
	if r.Bottleneck != "idle" || r.RPS != 0 {
		t.Errorf("idle analysis = %+v", r)
	}
}

func TestDefaultMachineShape(t *testing.T) {
	m := Default()
	if m.Host.Cores != 8 || m.DPU.Cores != 16 {
		t.Error("Table I core counts wrong")
	}
	if m.LinkBandwidthGbps != 200 {
		t.Errorf("link bandwidth = %g", m.LinkBandwidthGbps)
	}
}
