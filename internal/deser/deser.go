// Package deser implements the paper's custom protobuf deserializer
// (Sec. V): it decodes wire bytes *directly into the shared-ABI object
// layout* inside an arena block, so the receiver of the block (the host)
// gets a ready-to-use object with zero further work.
//
// Differences from the standard deserializer (internal/protomsg.Unmarshal):
//
//   - All storage comes from a bump arena inside the block being sent; the
//     system allocator is never touched (Sec. VI-C5's zero-LLC-miss
//     property).
//   - Strings are crafted in place with the libstdc++ SSO layout (Fig. 6),
//     including the self-referential data pointer for small strings.
//   - References are region-relative offsets, valid on both sides of the
//     shared address space without a fix-up pass (Sec. III-B).
//   - The deserializer is instrumented: it counts varint bytes decoded,
//     payload bytes copied, and UTF-8 bytes validated, which the DPU/host
//     cost models (internal/cpumodel) convert into cycles.
//
// Deliberate restriction: a singular message field may appear at most once
// in a body (canonical encoders never emit duplicates; merging inside a
// fixed arena would require resizing, which arena objects cannot do —
// Sec. II-B).
package deser

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/utf8x"
	"dpurpc/internal/wire"
)

// Errors returned by the deserializer.
var (
	ErrDepthExceeded      = errors.New("deser: message nesting too deep")
	ErrDuplicateSubfield  = errors.New("deser: duplicate singular message field (arena merge unsupported)")
	ErrWireTypeMismatch   = errors.New("deser: wire type mismatch")
	ErrMalformed          = errors.New("deser: malformed message")
	ErrElementCountChange = errors.New("deser: element count changed between passes")
)

// DefaultMaxDepth matches protobuf's default recursion limit.
const DefaultMaxDepth = 100

// GuardBytes is the size of the NullRef guard Deserialize and Fill prepend
// when decoding into a fresh arena at base region offset 0, so offset 0
// stays unambiguous. MeasureExact and Notes.Need do not include it; base-0
// callers must add it to the reported size.
const GuardBytes = 8

// Options configure a Deserializer.
type Options struct {
	// ValidateUTF8 enables UTF-8 validation of string fields (on by
	// default in gRPC; one of the paper's measured cost centers).
	ValidateUTF8 bool
	// MaxDepth bounds message nesting (0 means DefaultMaxDepth).
	MaxDepth int
	// ScalarUTF8 selects the byte-at-a-time validator, representing a core
	// without vector units (the DPU side). The word-at-a-time validator
	// stands in for the host's SIMD path.
	ScalarUTF8 bool
	// SGPayloadMin, when > 0, enables scatter-gather payload notes on the
	// planned path: a singular string/bytes payload of at least this many
	// bytes is not copied into the object area during Fill — the scan
	// emits a payload-ref note and FillSG writes the SSO offset form
	// pointing at a dedicated payload segment of the registered region
	// (placed once by PlaceSegments). 0 (the default) keeps every payload
	// inline, byte-identical to the pre-SG deserializer.
	SGPayloadMin int
}

// Stats counts the operations the cost models charge for. All counters are
// cumulative; use Reset between measurement windows.
type Stats struct {
	VarintBytes uint64 // bytes consumed by varint decoding (tags + values)
	FixedBytes  uint64 // bytes consumed by fixed32/64 decoding
	CopyBytes   uint64 // payload bytes copied into the arena
	UTF8Bytes   uint64 // bytes run through UTF-8 validation
	Messages    uint64 // message bodies deserialized (incl. nested)
	Fields      uint64 // field values decoded
	ArenaBytes  uint64 // arena bytes consumed
	// The compiled-plan path (Scan + Fill) splits its work into decode and
	// replay. ScannedBytes counts wire bytes covered by the single
	// structure-discovery pass; ReplayedBytes counts arena bytes stored by
	// replaying pre-decoded parse notes (no re-decode, no re-validation).
	// Both stay zero on the interpretive path.
	ScannedBytes  uint64
	ReplayedBytes uint64
	// RefBytes counts payload bytes carried as scatter-gather segments and
	// referenced by offset instead of copied by the fill: the deserializer
	// never touches them again after the single placement memcpy, so the
	// cost models price them at PayloadRefNS instead of CopyByteNS /
	// ReplayByteNS. Zero unless Options.SGPayloadMin is configured.
	RefBytes uint64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.VarintBytes += other.VarintBytes
	s.FixedBytes += other.FixedBytes
	s.CopyBytes += other.CopyBytes
	s.UTF8Bytes += other.UTF8Bytes
	s.Messages += other.Messages
	s.Fields += other.Fields
	s.ArenaBytes += other.ArenaBytes
	s.ScannedBytes += other.ScannedBytes
	s.ReplayedBytes += other.ReplayedBytes
	s.RefBytes += other.RefBytes
}

// Sub removes other from s — the inverse of Add, for measuring the counter
// movement of one window as the difference of two cumulative snapshots.
func (s *Stats) Sub(other Stats) {
	s.VarintBytes -= other.VarintBytes
	s.FixedBytes -= other.FixedBytes
	s.CopyBytes -= other.CopyBytes
	s.UTF8Bytes -= other.UTF8Bytes
	s.Messages -= other.Messages
	s.Fields -= other.Fields
	s.ArenaBytes -= other.ArenaBytes
	s.ScannedBytes -= other.ScannedBytes
	s.ReplayedBytes -= other.ReplayedBytes
	s.RefBytes -= other.RefBytes
}

// frame is per-nesting-level scratch (counts and cursors per field),
// recycled across messages so steady-state deserialization performs zero
// heap allocations.
type frame struct {
	counts  []uint32 // repeated-element counts from the count pass
	cursors []uint32 // fill cursors
	refs    []uint64 // array base region-offsets per repeated field
	seen    []bool   // singular message fields already materialized
}

func (f *frame) prepare(n int) {
	if cap(f.counts) < n {
		f.counts = make([]uint32, n)
		f.cursors = make([]uint32, n)
		f.refs = make([]uint64, n)
		f.seen = make([]bool, n)
	}
	f.counts = f.counts[:n]
	f.cursors = f.cursors[:n]
	f.refs = f.refs[:n]
	f.seen = f.seen[:n]
	for i := range f.counts {
		f.counts[i], f.cursors[i], f.refs[i], f.seen[i] = 0, 0, 0, false
	}
}

// Deserializer decodes wire bytes into arena objects. It is not safe for
// concurrent use; each poller owns one (paper Sec. III-C threading model).
type Deserializer struct {
	opts   Options
	frames []*frame
	notes  *Notes // DeserializePlanned's owned parse-notes scratch
	segCur uint64 // FillSG's cursor into the payload-segment area (region offset)
	// Stats accumulates instrumentation across calls.
	Stats Stats
}

// New returns a Deserializer with the given options.
func New(opts Options) *Deserializer {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	return &Deserializer{opts: opts}
}

func (d *Deserializer) frame(depth int) *frame {
	for len(d.frames) <= depth {
		d.frames = append(d.frames, &frame{})
	}
	return d.frames[depth]
}

func (d *Deserializer) validateUTF8(b []byte) bool {
	if !d.opts.ValidateUTF8 {
		return true
	}
	d.Stats.UTF8Bytes += uint64(len(b))
	if d.opts.ScalarUTF8 {
		return utf8x.ValidScalar(b)
	}
	return utf8x.Valid(b)
}

// Deserialize decodes data (one serialized message of layout lay) into a new
// object allocated from bump, whose byte 0 sits at region offset base. It
// returns the region offset of the root object.
func (d *Deserializer) Deserialize(lay *abi.Layout, data []byte, bump *arena.Bump, base uint64) (uint64, error) {
	if base == 0 && bump.Used() == 0 {
		// Reserve offset 0 so NullRef stays unambiguous.
		if _, _, err := bump.Alloc(GuardBytes, 8); err != nil {
			return 0, err
		}
	}
	before := bump.Used()
	off, err := d.message(lay, data, bump, base, 0)
	if err != nil {
		return 0, err
	}
	d.Stats.ArenaBytes += uint64(bump.Used() - before)
	return off, nil
}

// message allocates and fills one object from body.
func (d *Deserializer) message(lay *abi.Layout, body []byte, bump *arena.Bump, base uint64, depth int) (uint64, error) {
	if depth >= d.opts.MaxDepth {
		return 0, ErrDepthExceeded
	}
	obj, bumpOff, err := bump.Alloc(int(lay.Size), abi.ObjectAlign)
	if err != nil {
		return 0, err
	}
	copy(obj, lay.Default) // vptr/classID comes along, as in Sec. V-B
	objOff := base + uint64(bumpOff)
	d.Stats.Messages++
	if err := d.fill(lay, body, obj, objOff, bump, base, depth); err != nil {
		return 0, err
	}
	return objOff, nil
}

// fill decodes body into an existing object.
func (d *Deserializer) fill(lay *abi.Layout, body []byte, obj []byte, objOff uint64, bump *arena.Bump, base uint64, depth int) error {
	fr := d.frame(depth)
	fr.prepare(len(lay.Fields))

	// Pass 1 (only when the class has repeated fields): count elements so
	// each repeated field gets one contiguous array, as arena objects
	// require. Classes without repeated fields — e.g. the paper's Small
	// message — are decoded in a single pass.
	hasRepeated := false
	for i := range lay.Fields {
		if lay.Fields[i].Repeated {
			hasRepeated = true
			break
		}
	}
	if hasRepeated {
		if err := d.countPass(lay, body, fr); err != nil {
			return err
		}
		// Pre-allocate the arrays.
		for i := range lay.Fields {
			fl := &lay.Fields[i]
			if !fl.Repeated || fr.counts[i] == 0 {
				continue
			}
			var elem int
			switch {
			case fl.ElemSize != 0:
				elem = int(fl.ElemSize)
			case fl.Kind == protodesc.KindMessage:
				elem = abi.RefSize
			default:
				elem = abi.StringRecordSize
			}
			alignTo := elem
			if alignTo > 8 {
				alignTo = 8
			}
			arr, arrOff, err := bump.Alloc(int(fr.counts[i])*elem, alignTo)
			if err != nil {
				return err
			}
			_ = arr
			fr.refs[i] = base + uint64(arrOff)
			hdr := obj[fl.Offset : fl.Offset+abi.RepeatedHdrSize]
			binary.LittleEndian.PutUint64(hdr[0:8], fr.refs[i])
			binary.LittleEndian.PutUint64(hdr[8:16], uint64(fr.counts[i]))
			setPresence(obj, lay, fl.Desc.Index)
		}
	}

	// Pass 2: decode values.
	pos := 0
	for pos < len(body) {
		num, wt, n, err := wire.Tag(body[pos:])
		if err != nil {
			if errors.Is(err, wire.ErrInvalidTag) {
				return err
			}
			return fmt.Errorf("%w: bad tag", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n)
		pos += n
		f := lay.Msg.FieldByNumber(num)
		if f == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		consumed, err := d.value(lay, fl, fr, body[pos:], obj, objOff, wt, bump, base, depth)
		if err != nil {
			return err
		}
		pos += consumed
	}
	return nil
}

// countPass scans body counting repeated elements per field. Values are
// skipped structurally; nested bodies are not descended into (their own fill
// performs its own count).
func (d *Deserializer) countPass(lay *abi.Layout, body []byte, fr *frame) error {
	return countRepeated(lay, body, fr.counts)
}

// countRepeated is the count pass proper, shared with MeasureExact (which
// must replay the same array pre-allocations the fill performs).
func countRepeated(lay *abi.Layout, body []byte, counts []uint32) error {
	pos := 0
	for pos < len(body) {
		num, wt, n, err := wire.Tag(body[pos:])
		if err != nil {
			if errors.Is(err, wire.ErrInvalidTag) {
				return err
			}
			return fmt.Errorf("%w: bad tag in count pass", ErrMalformed)
		}
		pos += n
		f := lay.Msg.FieldByNumber(num)
		if f == nil || !f.Repeated {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		switch {
		case fl.ElemSize != 0 && wt == wire.TypeBytes:
			// Packed: count elements inside the record.
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated packed field", ErrMalformed)
			}
			pos += n
			if fs := f.Kind.FixedSize(); fs != 0 {
				if len(payload)%fs != 0 {
					return fmt.Errorf("%w: packed fixed payload not a multiple of %d", ErrMalformed, fs)
				}
				counts[f.Index] += uint32(len(payload) / fs)
			} else {
				// Count varints: one per byte with the continuation bit clear.
				cnt := 0
				for _, c := range payload {
					if c < 0x80 {
						cnt++
					}
				}
				if len(payload) > 0 && payload[len(payload)-1] >= 0x80 {
					return fmt.Errorf("%w: packed varint payload truncated", ErrMalformed)
				}
				counts[f.Index] += uint32(cnt)
			}
		default:
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			counts[f.Index]++
		}
	}
	return nil
}

// setPresence sets the hasbit for field index idx in obj.
func setPresence(obj []byte, lay *abi.Layout, idx int) {
	word := lay.PresenceOff + uint32(idx/32)*4
	w := binary.LittleEndian.Uint32(obj[word : word+4])
	binary.LittleEndian.PutUint32(obj[word:word+4], w|1<<(uint(idx)%32))
}

// value decodes one field value at the start of rest and returns the bytes
// consumed.
func (d *Deserializer) value(lay *abi.Layout, fl *abi.FieldLayout, fr *frame, rest []byte, obj []byte, objOff uint64, wt wire.Type, bump *arena.Bump, base uint64, depth int) (int, error) {
	f := fl.Desc
	d.Stats.Fields++
	switch {
	case f.Repeated && fl.ElemSize != 0:
		return d.repeatedScalar(fl, fr, rest, wt, bump, base)
	case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
		if wt != wire.TypeBytes {
			return 0, wireErr(lay, f, wt)
		}
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated string element", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		i := fr.cursors[f.Index]
		if i >= fr.counts[f.Index] {
			return 0, ErrElementCountChange
		}
		fr.cursors[f.Index]++
		recOff := fr.refs[f.Index] + uint64(i)*abi.StringRecordSize
		rec, err := sliceAt(bump, base, recOff, abi.StringRecordSize)
		if err != nil {
			return 0, err
		}
		if err := d.putString(f.Kind, rec, recOff, payload, bump, base); err != nil {
			return 0, err
		}
		return n, nil
	case f.Repeated: // repeated message
		if wt != wire.TypeBytes {
			return 0, wireErr(lay, f, wt)
		}
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated message element", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		i := fr.cursors[f.Index]
		if i >= fr.counts[f.Index] {
			return 0, ErrElementCountChange
		}
		fr.cursors[f.Index]++
		childOff, err := d.message(fl.Child, payload, bump, base, depth+1)
		if err != nil {
			return 0, err
		}
		refOff := fr.refs[f.Index] + uint64(i)*abi.RefSize
		refSlot, err := sliceAt(bump, base, refOff, abi.RefSize)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(refSlot, childOff)
		return n, nil
	case f.Kind == protodesc.KindMessage:
		if wt != wire.TypeBytes {
			return 0, wireErr(lay, f, wt)
		}
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated nested message", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		if fr.seen[f.Index] {
			return 0, fmt.Errorf("%w: %s.%s", ErrDuplicateSubfield, lay.Msg.Name, f.Name)
		}
		fr.seen[f.Index] = true
		childOff, err := d.message(fl.Child, payload, bump, base, depth+1)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(obj[fl.Offset:fl.Offset+8], childOff)
		setPresence(obj, lay, f.Index)
		return n, nil
	case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
		if wt != wire.TypeBytes {
			return 0, wireErr(lay, f, wt)
		}
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated string", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		rec := obj[fl.Offset : fl.Offset+abi.StringRecordSize]
		if err := d.putString(f.Kind, rec, objOff+uint64(fl.Offset), payload, bump, base); err != nil {
			return 0, err
		}
		setPresence(obj, lay, f.Index)
		return n, nil
	default: // singular scalar
		bits, n, err := d.scalar(rest, f.Kind, wt)
		if err != nil {
			return 0, wrapScalarErr(lay, f, err)
		}
		slot := obj[fl.Offset : fl.Offset+fl.Size]
		switch fl.Size {
		case 1:
			if bits != 0 {
				slot[0] = 1
			} else {
				slot[0] = 0
			}
		case 4:
			binary.LittleEndian.PutUint32(slot, uint32(bits))
		default:
			binary.LittleEndian.PutUint64(slot, bits)
		}
		setPresence(obj, lay, f.Index)
		return n, nil
	}
}

// repeatedScalar decodes one wire value (packed record or single element) of
// a repeated scalar field directly into its pre-allocated array.
func (d *Deserializer) repeatedScalar(fl *abi.FieldLayout, fr *frame, rest []byte, wt wire.Type, bump *arena.Bump, base uint64) (int, error) {
	f := fl.Desc
	elem := int(fl.ElemSize)
	writeElem := func(arr []byte, i uint32, bits uint64) {
		switch elem {
		case 1:
			if bits != 0 {
				arr[i] = 1
			} else {
				arr[i] = 0
			}
		case 4:
			binary.LittleEndian.PutUint32(arr[int(i)*4:], uint32(bits))
		default:
			binary.LittleEndian.PutUint64(arr[int(i)*8:], bits)
		}
	}
	if fr.counts[f.Index] == 0 {
		return 0, ErrElementCountChange
	}
	arr, err := sliceAt(bump, base, fr.refs[f.Index], int(fr.counts[f.Index])*elem)
	if err != nil {
		return 0, err
	}
	if wt == wire.TypeBytes {
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated packed field", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		if fs := f.Kind.FixedSize(); fs != 0 {
			cnt := uint32(len(payload) / fs)
			if fr.cursors[f.Index]+cnt > fr.counts[f.Index] {
				return 0, ErrElementCountChange
			}
			if fs == elem {
				// Bulk copy: the fast path for fixed-width arrays (the
				// paper's "high copy cost" message class).
				copy(arr[int(fr.cursors[f.Index])*elem:], payload)
				d.Stats.CopyBytes += uint64(len(payload))
				d.Stats.FixedBytes += uint64(len(payload))
				fr.cursors[f.Index] += cnt
			} else {
				pos := 0
				for i := uint32(0); i < cnt; i++ {
					var bits uint64
					if fs == 4 {
						v, _ := wire.Fixed32(payload[pos:])
						bits = uint64(v)
					} else {
						v, _ := wire.Fixed64(payload[pos:])
						bits = v
					}
					pos += fs
					d.Stats.FixedBytes += uint64(fs)
					writeElem(arr, fr.cursors[f.Index], bits)
					fr.cursors[f.Index]++
				}
			}
			return n, nil
		}
		// Packed varints: the paper's "high computational cost" class.
		pos := 0
		for pos < len(payload) {
			v, vn := wire.Uvarint(payload[pos:])
			if vn <= 0 {
				return 0, fmt.Errorf("%w: bad packed varint", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(vn)
			pos += vn
			if fr.cursors[f.Index] >= fr.counts[f.Index] {
				return 0, ErrElementCountChange
			}
			writeElem(arr, fr.cursors[f.Index], storedScalar(f.Kind, v))
			fr.cursors[f.Index]++
		}
		return n, nil
	}
	// Unpacked single element.
	bits, n, err := d.scalar(rest, f.Kind, wt)
	if err != nil {
		return 0, err
	}
	if fr.cursors[f.Index] >= fr.counts[f.Index] {
		return 0, ErrElementCountChange
	}
	writeElem(arr, fr.cursors[f.Index], bits)
	fr.cursors[f.Index]++
	return n, nil
}

// putString writes payload into a 32-byte string record, inline (SSO) or
// spilled to the arena, validating UTF-8 for string kinds.
func (d *Deserializer) putString(k protodesc.Kind, rec []byte, recOff uint64, payload []byte, bump *arena.Bump, base uint64) error {
	if k == protodesc.KindString && !d.validateUTF8(payload) {
		return wire.ErrInvalidUTF8
	}
	d.Stats.CopyBytes += uint64(len(payload))
	if len(payload) <= abi.SSOCapacity {
		abi.PutStringInline(rec, recOff, payload)
		return nil
	}
	dst, dstOff, err := bump.Alloc(len(payload), 1)
	if err != nil {
		return err
	}
	copy(dst, payload)
	abi.PutStringRef(rec, base+uint64(dstOff), len(payload))
	return nil
}

// scalar decodes one singular scalar value, charging decode stats.
func (d *Deserializer) scalar(rest []byte, k protodesc.Kind, wt wire.Type) (uint64, int, error) {
	v, n, err := decodeScalar(rest, k, wt)
	if err != nil {
		return 0, 0, err
	}
	switch k.WireType() {
	case wire.TypeFixed32:
		d.Stats.FixedBytes += 4
	case wire.TypeFixed64:
		d.Stats.FixedBytes += 8
	default:
		d.Stats.VarintBytes += uint64(n)
	}
	return v, n, nil
}

// scalarBits is the stat-free decode of one singular scalar value, shared
// between the charging path above and the fast path's replay mode (where
// the scan already charged the decode).
func decodeScalar(rest []byte, k protodesc.Kind, wt wire.Type) (uint64, int, error) {
	switch k.WireType() {
	case wire.TypeFixed32:
		if wt != wire.TypeFixed32 {
			return 0, 0, ErrWireTypeMismatch
		}
		v, n := wire.Fixed32(rest)
		if n == 0 {
			return 0, 0, ErrMalformed
		}
		return uint64(v), n, nil
	case wire.TypeFixed64:
		if wt != wire.TypeFixed64 {
			return 0, 0, ErrWireTypeMismatch
		}
		v, n := wire.Fixed64(rest)
		if n == 0 {
			return 0, 0, ErrMalformed
		}
		return v, n, nil
	default:
		if wt != wire.TypeVarint {
			return 0, 0, ErrWireTypeMismatch
		}
		v, n := wire.Uvarint(rest)
		if n <= 0 {
			return 0, 0, ErrMalformed
		}
		return storedScalar(k, v), n, nil
	}
}

// storedScalar converts a decoded varint into the slot bit pattern.
func storedScalar(k protodesc.Kind, v uint64) uint64 {
	switch k {
	case protodesc.KindBool:
		if v != 0 {
			return 1
		}
		return 0
	case protodesc.KindInt32, protodesc.KindEnum, protodesc.KindUint32:
		return uint64(uint32(v))
	case protodesc.KindSint32:
		return uint64(uint32(int32(wire.DecodeZigZag(v))))
	case protodesc.KindSint64:
		return uint64(wire.DecodeZigZag(v))
	default:
		return v
	}
}

func wireErr(lay *abi.Layout, f *protodesc.Field, wt wire.Type) error {
	return fmt.Errorf("%w: %s.%s got %v", ErrWireTypeMismatch, lay.Msg.Name, f.Name, wt)
}

func wrapScalarErr(lay *abi.Layout, f *protodesc.Field, err error) error {
	return fmt.Errorf("%s.%s: %w", lay.Msg.Name, f.Name, err)
}

// sliceAt returns n bytes of the bump buffer at region offset off.
func sliceAt(bump *arena.Bump, base, off uint64, n int) ([]byte, error) {
	buf := bump.Bytes()
	if off < base {
		return nil, ErrMalformed
	}
	start := off - base
	if start+uint64(n) > uint64(len(buf)) {
		return nil, ErrMalformed
	}
	return buf[start : start+uint64(n)], nil
}
