package deser

import (
	"bytes"
	"strings"
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/protomsg"
)

// Scatter-gather note tests: the SGPayloadMin threshold decision, the
// bypass/zero-length corners, and byte-identity of the offset-referenced
// object against the copy-fill object. The end-to-end framing (SG tables on
// the wire, both datapath directions) is covered in internal/offload and
// internal/rpcrdma; here we pin the deserializer-level contract those layers
// build on.

// sgFill lays out a region the way the datapath does —
// [base pad][object area][payload segments] — and runs the SG pipeline
// (Scan, FillSG, PlaceSegments) over it. It returns the root view and the
// placed segment refs. base is fixed off 0 so no NullRef guard is needed.
func sgFill(t *testing.T, d *Deserializer, lay *abi.Layout, data []byte) (abi.View, []SegRef, *Notes) {
	t.Helper()
	const base = 64
	p := PlanFor(lay)
	no, err := d.Scan(p, data)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	objArea := alignUp8(no.Need())
	buf := make([]byte, base+objArea+no.SegBytes())
	bump := arena.NewBump(buf[base : base+objArea])
	segBase := uint64(base + objArea)
	off, err := d.FillSG(p, data, no, bump, base, segBase)
	if err != nil {
		t.Fatalf("FillSG: %v", err)
	}
	refs := d.PlaceSegments(data, no, buf[segBase:], nil)
	return abi.MakeView(&abi.Region{Buf: buf}, off, lay), refs, no
}

// TestSGThresholdStraddle: only payloads of at least SGPayloadMin become
// segments — min-1 stays inline, min and min+1 ride as segments, and the
// segment area is 8-aligned per payload.
func TestSGThresholdStraddle(t *testing.T) {
	const min = 256 // comfortably above SmallFastPathMax/4 so no bypass at min-1
	cases := []struct {
		name     string
		n        int
		segs     int
		segBytes int
	}{
		{"UnderMin", min - 1, 0, 0},
		{"AtMin", min, 1, alignUp8(min)},
		{"OverMin", min + 1, 1, alignUp8(min + 1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := protomsg.New(charDesc)
			m.SetString("data", strings.Repeat("x", c.n))
			data := m.Marshal(nil)

			d := New(Options{SGPayloadMin: min})
			no, err := d.Scan(PlanFor(charLay), data)
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			defer no.Release()
			if no.SegCount() != c.segs || no.SegBytes() != c.segBytes {
				t.Fatalf("SegCount/SegBytes = %d/%d, want %d/%d",
					no.SegCount(), no.SegBytes(), c.segs, c.segBytes)
			}
			if c.segs > 0 {
				// The segment payload must not be charged to the object
				// area: the SG Need is the inline Need minus the spill.
				inl, err := MeasureExact(charLay, data)
				if err != nil {
					t.Fatalf("MeasureExact: %v", err)
				}
				if no.Need() >= inl {
					t.Fatalf("SG Need %d not smaller than inline need %d", no.Need(), inl)
				}
			}
		})
	}
}

// TestSGSmallMessageBypass: a simple-layout message under SmallFastPathMax
// takes the scan-bypass fast path even with SG enabled — the payload stays
// inline (SegCount 0) and the fill is byte-identical to the SG-disabled
// decode. The datapath relies on this: tiny messages never grow an SG table.
func TestSGSmallMessageBypass(t *testing.T) {
	m := protomsg.New(charDesc)
	m.SetString("data", strings.Repeat("y", 20)) // >= min, but wire size < SmallFastPathMax
	data := m.Marshal(nil)

	d := New(Options{SGPayloadMin: 16})
	no, err := d.Scan(PlanFor(charLay), data)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	defer no.Release()
	if !no.Bypass() {
		t.Fatal("small simple message did not take the scan bypass")
	}
	if no.SegCount() != 0 || no.SegBytes() != 0 {
		t.Fatalf("bypass notes carry segments: %d/%d", no.SegCount(), no.SegBytes())
	}

	buf := make([]byte, 64+no.Need())
	bump := arena.NewBump(buf[64:])
	off, err := d.Fill(PlanFor(charLay), data, no, bump, 64)
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	v := abi.MakeView(&abi.Region{Buf: buf}, off, charLay)
	got, err := Serialize(v, nil)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	want, err := Serialize(roundTrip(t, charLay, data), nil)
	if err != nil {
		t.Fatalf("Serialize inline: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("bypass fill with SG enabled diverges from inline decode")
	}
}

// TestSGZeroLengthPayload: a present-but-empty payload never becomes a
// segment regardless of threshold. Raw wire bytes force the empty field
// (protomsg omits empty proto3 fields), on a non-simple layout so the scan
// actually runs.
func TestSGZeroLengthPayload(t *testing.T) {
	data := []byte{0x72, 0x00} // field 14 (s), wire type bytes, length 0
	d := New(Options{ValidateUTF8: true, SGPayloadMin: 1})
	no, err := d.Scan(PlanFor(everyLay), data)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	defer no.Release()
	if no.SegCount() != 0 || no.SegBytes() != 0 {
		t.Fatalf("zero-length payload produced segments: %d/%d", no.SegCount(), no.SegBytes())
	}
}

// TestSGMixedInlineAndSegments: one message with two SG-eligible payloads
// (singular string + bytes over the threshold), an under-threshold string,
// repeated strings (never SG), and scalars. The SG-filled object must
// re-serialize byte-identical to the copy-filled object, the placed refs
// must match note order with 8-aligned packing and zeroed padding, and the
// byte accounting must split cleanly between CopyBytes and RefBytes.
func TestSGMixedInlineAndSegments(t *testing.T) {
	const min = 256
	sPay := strings.Repeat("s", min+43) // SG'd, unaligned length
	rawPay := bytes.Repeat([]byte{0xa5}, 2*min)

	m := protomsg.New(everyDesc)
	m.SetString("s", sPay)
	m.SetBytes("raw", rawPay)
	m.SetUint32("u32", 77)
	m.AppendString("names", strings.Repeat("n", min)) // repeated: stays inline
	m.AppendNum("nums", 5)
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 9)
	m.SetMessage("child", child)
	data := m.Marshal(nil)

	d := New(Options{ValidateUTF8: true, SGPayloadMin: min})
	v, refs, no := sgFill(t, d, everyLay, data)
	defer no.Release()

	if no.SegCount() != 2 {
		t.Fatalf("SegCount = %d, want 2 (s and raw)", no.SegCount())
	}
	if len(refs) != 2 {
		t.Fatalf("refs = %d, want 2", len(refs))
	}
	// Note order is wire order: s (field 14) then raw (field 15), packed
	// back to back at 8-byte alignment.
	if refs[0].FieldNum != 14 || refs[0].Off != 0 || int(refs[0].Len) != len(sPay) {
		t.Fatalf("refs[0] = %+v", refs[0])
	}
	if refs[1].FieldNum != 15 || int(refs[1].Off) != alignUp8(len(sPay)) || int(refs[1].Len) != len(rawPay) {
		t.Fatalf("refs[1] = %+v", refs[1])
	}
	if d.Stats.RefBytes != uint64(len(sPay)+len(rawPay)) {
		t.Fatalf("RefBytes = %d, want %d", d.Stats.RefBytes, len(sPay)+len(rawPay))
	}

	if err := abi.Verify(v); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := v.StrName("s"); string(got) != sPay {
		t.Fatalf("s reads back %d bytes, want %d", len(got), len(sPay))
	}
	if got := v.StrName("raw"); !bytes.Equal(got, rawPay) {
		t.Fatalf("raw reads back %d bytes, want %d", len(got), len(rawPay))
	}

	got, err := Serialize(v, nil)
	if err != nil {
		t.Fatalf("Serialize SG view: %v", err)
	}
	want, err := Serialize(roundTrip(t, everyLay, data), nil)
	if err != nil {
		t.Fatalf("Serialize inline view: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("SG object re-serializes differently from copy-fill object")
	}
	ref := protomsg.New(everyDesc)
	if err := ref.Unmarshal(got); err != nil {
		t.Fatalf("reference rejects SG re-serialization: %v", err)
	}
	if !protomsg.Equal(m, ref) {
		t.Fatal("SG round trip disagrees with original message")
	}
}

// TestSGNotesReusable: the same notes drive PlaceSegments and multiple
// FillSG calls (the datapath places once, then may refill on retry paths);
// every pass must agree.
func TestSGNotesReusable(t *testing.T) {
	const min = 256
	m := protomsg.New(charDesc)
	m.SetString("data", strings.Repeat("z", 3*min))
	data := m.Marshal(nil)

	const base = 64
	d := New(Options{SGPayloadMin: min})
	p := PlanFor(charLay)
	no, err := d.Scan(p, data)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	defer no.Release()
	objArea := alignUp8(no.Need())
	buf := make([]byte, base+objArea+no.SegBytes())
	bump := arena.NewBump(buf[base : base+objArea])
	segBase := uint64(base + objArea)
	d.PlaceSegments(data, no, buf[segBase:], nil)

	var first []byte
	for pass := 0; pass < 3; pass++ {
		bump.Reset()
		off, err := d.FillSG(p, data, no, bump, base, segBase)
		if err != nil {
			t.Fatalf("pass %d FillSG: %v", pass, err)
		}
		v := abi.MakeView(&abi.Region{Buf: buf}, off, charLay)
		out, err := Serialize(v, nil)
		if err != nil {
			t.Fatalf("pass %d Serialize: %v", pass, err)
		}
		if pass == 0 {
			first = out
			if !bytes.Equal(out, data) {
				t.Fatal("SG round trip not byte-identical to input")
			}
		} else if !bytes.Equal(out, first) {
			t.Fatalf("pass %d diverges from pass 0", pass)
		}
	}
}
