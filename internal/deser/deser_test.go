package deser

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protodsl"
	"dpurpc/internal/protomsg"
	"dpurpc/internal/wire"
)

const schema = `
syntax = "proto3";
package t;

message Small {
  uint32 id = 1;
  bool flag = 2;
  sint32 delta = 3;
  float ratio = 4;
}

message IntArray { repeated uint32 values = 1; }
message CharArray { string data = 1; }

message Everything {
  bool b = 1;
  int32 i32 = 2;
  sint32 s32 = 3;
  uint32 u32 = 4;
  int64 i64 = 5;
  sint64 s64 = 6;
  uint64 u64 = 7;
  fixed32 f32 = 8;
  sfixed32 sf32 = 9;
  fixed64 f64 = 10;
  sfixed64 sf64 = 11;
  float fl = 12;
  double db = 13;
  string s = 14;
  bytes raw = 15;
  Small child = 16;
  repeated uint32 nums = 17;
  repeated sint64 zig = 18 [packed=false];
  repeated fixed64 stamps = 19;
  repeated bool flags = 20;
  repeated string names = 21;
  repeated Small kids = 22;
  repeated double weights = 23;
}

message Deep {
  uint32 n = 1;
  Deep inner = 2;
}
`

var (
	smallDesc  *protodesc.Message
	intArrDesc *protodesc.Message
	charDesc   *protodesc.Message
	everyDesc  *protodesc.Message
	deepDesc   *protodesc.Message

	smallLay  *abi.Layout
	intArrLay *abi.Layout
	charLay   *abi.Layout
	everyLay  *abi.Layout
	deepLay   *abi.Layout
)

func init() {
	f, err := protodsl.Parse("deser_test.proto", schema)
	if err != nil {
		panic(err)
	}
	reg := protodesc.NewRegistry()
	if err := reg.Register(f); err != nil {
		panic(err)
	}
	smallDesc = reg.Message("t.Small")
	intArrDesc = reg.Message("t.IntArray")
	charDesc = reg.Message("t.CharArray")
	everyDesc = reg.Message("t.Everything")
	deepDesc = reg.Message("t.Deep")
	lays := abi.ComputeAll([]*protodesc.Message{smallDesc, intArrDesc, charDesc, everyDesc, deepDesc})
	smallLay, intArrLay, charLay, everyLay, deepLay = lays[0], lays[1], lays[2], lays[3], lays[4]
	for i, l := range lays {
		l.SetClassID(uint32(i))
	}
}

// measureBase0 sizes a base-0 deserialization: the exact arena bytes plus
// the GuardBytes prefix Deserialize prepends at base 0.
func measureBase0(lay *abi.Layout, data []byte) (int, error) {
	need, err := MeasureExact(lay, data)
	return need + GuardBytes, err
}

// roundTrip deserializes data into a fresh arena and returns the root view.
func roundTrip(t *testing.T, lay *abi.Layout, data []byte) abi.View {
	t.Helper()
	need, err := measureBase0(lay, data)
	if err != nil {
		t.Fatalf("MeasureExact: %v", err)
	}
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	off, err := d.Deserialize(lay, data, bump, 0)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	if bump.Used() != need {
		t.Fatalf("exact size %d missed: used %d", need, bump.Used())
	}
	return abi.MakeView(&abi.Region{Buf: bump.Bytes(), Base: 0}, off, lay)
}

// reserialize checks Serialize(view) reproduces the canonical bytes.
func reserialize(t *testing.T, v abi.View, want []byte) {
	t.Helper()
	got, err := Serialize(v, nil)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Serialize mismatch:\n got %x\nwant %x", got, want)
	}
	n, err := SerializedSize(v)
	if err != nil || n != len(want) {
		t.Fatalf("SerializedSize = %d,%v want %d", n, err, len(want))
	}
}

func TestSmallMessage(t *testing.T) {
	m := protomsg.New(smallDesc)
	m.SetUint32("id", 4242)
	m.SetBool("flag", true)
	m.SetInt32("delta", -17)
	m.SetFloat("ratio", 0.75)
	data := m.Marshal(nil)

	v := roundTrip(t, smallLay, data)
	if !v.Valid() {
		t.Fatal("view invalid")
	}
	if v.U32Name("id") != 4242 || !v.BoolName("flag") ||
		v.I32Name("delta") != -17 || v.F32Name("ratio") != 0.75 {
		t.Error("values wrong")
	}
	for _, n := range []string{"id", "flag", "delta", "ratio"} {
		if !v.HasName(n) {
			t.Errorf("%s hasbit not set", n)
		}
	}
	reserialize(t, v, data)
}

func TestEverythingRoundTrip(t *testing.T) {
	m := protomsg.New(everyDesc)
	m.SetBool("b", true)
	m.SetInt32("i32", -123456)
	m.SetInt32("s32", -77)
	m.SetUint32("u32", 3000000000)
	m.SetInt64("i64", math.MinInt64)
	m.SetInt64("s64", -99999999999)
	m.SetUint64("u64", math.MaxUint64)
	m.SetUint32("f32", 0xcafebabe)
	m.SetInt32("sf32", -1)
	m.SetUint64("f64", 1<<62)
	m.SetInt64("sf64", -2)
	m.SetFloat("fl", 1.5)
	m.SetDouble("db", -2.25e-100)
	m.SetString("s", "inline") // SSO
	m.SetBytes("raw", bytes.Repeat([]byte{7}, 100))
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 5)
	child.SetInt32("delta", -3)
	m.SetMessage("child", child)
	for i := 0; i < 50; i++ {
		m.AppendNum("nums", uint64(i*7))
	}
	for _, z := range []int64{-1, 0, 1, math.MaxInt64, math.MinInt64} {
		m.AppendNum("zig", uint64(z))
	}
	for i := 0; i < 9; i++ {
		m.AppendNum("stamps", uint64(1)<<uint(i*7))
	}
	for i := 0; i < 5; i++ {
		m.AppendNum("flags", uint64(i%2))
	}
	m.AppendString("names", "tiny")
	m.AppendString("names", strings.Repeat("long", 10))
	m.AppendString("names", "")
	for i := 0; i < 3; i++ {
		k := protomsg.New(smallDesc)
		k.SetUint32("id", uint32(100+i))
		m.AppendMessage("kids", k)
	}
	m.AppendNum("weights", math.Float64bits(3.14))
	data := m.Marshal(nil)

	v := roundTrip(t, everyLay, data)
	if v.I32Name("i32") != -123456 || v.I32Name("s32") != -77 {
		t.Error("int32 kinds wrong")
	}
	if v.U32Name("u32") != 3000000000 || v.I64Name("i64") != math.MinInt64 {
		t.Error("wide ints wrong")
	}
	if v.I64Name("s64") != -99999999999 || v.U64Name("u64") != math.MaxUint64 {
		t.Error("64-bit varints wrong")
	}
	if v.U32Name("f32") != 0xcafebabe || v.I32Name("sf32") != -1 {
		t.Error("fixed32 wrong")
	}
	if v.U64Name("f64") != 1<<62 || v.I64Name("sf64") != -2 {
		t.Error("fixed64 wrong")
	}
	if v.F32Name("fl") != 1.5 || v.F64Name("db") != -2.25e-100 {
		t.Error("floats wrong")
	}
	if string(v.StrName("s")) != "inline" || len(v.StrName("raw")) != 100 {
		t.Error("strings wrong")
	}
	cv, ok := v.MsgName("child")
	if !ok || cv.U32Name("id") != 5 || cv.I32Name("delta") != -3 {
		t.Error("child wrong")
	}
	if v.LenName("nums") != 50 || v.NumAtName("nums", 49) != 49*7 {
		t.Error("packed u32 wrong")
	}
	if int64(v.NumAtName("zig", 0)) != -1 || int64(v.NumAtName("zig", 4)) != math.MinInt64 {
		t.Error("zigzag array wrong")
	}
	if v.LenName("stamps") != 9 || v.NumAtName("stamps", 8) != 1<<56 {
		t.Error("fixed array wrong")
	}
	if v.NumAtName("flags", 1) != 1 || v.NumAtName("flags", 0) != 0 {
		t.Error("bool array wrong")
	}
	if string(v.StrAtName("names", 1)) != strings.Repeat("long", 10) {
		t.Error("repeated string wrong")
	}
	if got := v.StrAtName("names", 2); got == nil || len(got) != 0 {
		t.Error("empty repeated string wrong")
	}
	k2, ok := v.MsgAtName("kids", 2)
	if !ok || k2.U32Name("id") != 102 {
		t.Error("repeated message wrong")
	}
	if math.Float64frombits(v.NumAtName("weights", 0)) != 3.14 {
		t.Error("double array wrong")
	}
	reserialize(t, v, data)
}

func TestIntArrayScenario(t *testing.T) {
	// The paper's x512 Ints message: skewed random uint32s, mostly small.
	rng := mt19937.New(mt19937.DefaultSeed)
	m := protomsg.New(intArrDesc)
	for i := 0; i < 512; i++ {
		shift := rng.Uint32n(32)
		m.AppendNum("values", uint64(rng.Uint32()>>shift))
	}
	data := m.Marshal(nil)
	v := roundTrip(t, intArrLay, data)
	if v.LenName("values") != 512 {
		t.Fatalf("len = %d", v.LenName("values"))
	}
	rng.Seed(mt19937.DefaultSeed)
	for i := 0; i < 512; i++ {
		shift := rng.Uint32n(32)
		if want := uint64(rng.Uint32() >> shift); v.NumAtName("values", i) != want {
			t.Fatalf("element %d = %d want %d", i, v.NumAtName("values", i), want)
		}
	}
	reserialize(t, v, data)
}

func TestCharArrayScenario(t *testing.T) {
	payload := strings.Repeat("abcdefgh", 1000) // 8000 chars
	m := protomsg.New(charDesc)
	m.SetString("data", payload)
	data := m.Marshal(nil)
	if len(data) != 8003 {
		t.Fatalf("x8000 chars wire size = %d, paper says 8003", len(data))
	}
	v := roundTrip(t, charLay, data)
	if string(v.StrName("data")) != payload {
		t.Error("char array wrong")
	}
	if v.IsSSO(charLay.Msg.FieldByName("data").Index) {
		t.Error("8000-byte string cannot be SSO")
	}
	reserialize(t, v, data)
}

func TestSSOBoundary(t *testing.T) {
	for _, n := range []int{0, 1, 14, 15, 16, 17, 100} {
		m := protomsg.New(charDesc)
		m.SetString("data", strings.Repeat("x", n))
		data := m.Marshal(nil)
		v := roundTrip(t, charLay, data)
		if got := len(v.StrName("data")); got != n {
			t.Errorf("n=%d: read %d bytes", n, got)
		}
		idx := charLay.Msg.FieldByName("data").Index
		wantSSO := n <= 15 && n > 0
		if n == 0 {
			continue // zero-length strings are not marked present on the wire
		}
		if v.IsSSO(idx) != wantSSO {
			t.Errorf("n=%d: IsSSO = %v, want %v", n, v.IsSSO(idx), wantSSO)
		}
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	var data []byte
	data = wire.AppendTag(data, 99, wire.TypeBytes)
	data = wire.AppendBytes(data, []byte("mystery"))
	data = wire.AppendTag(data, 1, wire.TypeVarint)
	data = wire.AppendVarint(data, 7)
	v := roundTrip(t, smallLay, data)
	if v.U32Name("id") != 7 {
		t.Error("field after unknown lost")
	}
}

func TestDuplicateSingularMessageRejected(t *testing.T) {
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 1)
	cb := child.Marshal(nil)
	var data []byte
	for i := 0; i < 2; i++ {
		data = wire.AppendTag(data, 16, wire.TypeBytes) // Everything.child
		data = wire.AppendBytes(data, cb)
	}
	bump := arena.NewBump(make([]byte, 4096))
	d := New(Options{})
	if _, err := d.Deserialize(everyLay, data, bump, 0); err == nil {
		t.Error("duplicate singular message accepted")
	}
}

func TestDepthLimit(t *testing.T) {
	// Build nesting deeper than the limit.
	depth := DefaultMaxDepth + 5
	var build func(d int) *protomsg.Message
	build = func(d int) *protomsg.Message {
		m := protomsg.New(deepDesc)
		m.SetUint32("n", uint32(d))
		if d > 0 {
			m.SetMessage("inner", build(d-1))
		}
		return m
	}
	data := build(depth).Marshal(nil)
	bump := arena.NewBump(make([]byte, 1<<20))
	d := New(Options{})
	if _, err := d.Deserialize(deepLay, data, bump, 0); err == nil {
		t.Error("over-deep message accepted")
	}
	if _, err := measureBase0(deepLay, data); err == nil {
		t.Error("Measure accepted over-deep message")
	}
	// Just inside the limit is fine.
	ok := build(DefaultMaxDepth - 2).Marshal(nil)
	need, err := measureBase0(deepLay, ok)
	if err != nil {
		t.Fatal(err)
	}
	bump2 := arena.NewBump(make([]byte, need))
	if _, err := New(Options{}).Deserialize(deepLay, ok, bump2, 0); err != nil {
		t.Errorf("depth-99 message rejected: %v", err)
	}
}

func TestInvalidUTF8(t *testing.T) {
	var data []byte
	data = wire.AppendTag(data, 1, wire.TypeBytes) // CharArray.data
	data = wire.AppendBytes(data, []byte{0xff, 0xfe})
	bump := arena.NewBump(make([]byte, 4096))
	d := New(Options{ValidateUTF8: true})
	if _, err := d.Deserialize(charLay, data, bump, 0); err != wire.ErrInvalidUTF8 {
		t.Errorf("err = %v", err)
	}
	// Without validation it passes (bytes preserved).
	bump.Reset()
	d2 := New(Options{ValidateUTF8: false})
	if _, err := d2.Deserialize(charLay, data, bump, 0); err != nil {
		t.Errorf("unvalidated err = %v", err)
	}
	// Scalar validator path.
	bump.Reset()
	d3 := New(Options{ValidateUTF8: true, ScalarUTF8: true})
	if _, err := d3.Deserialize(charLay, data, bump, 0); err != wire.ErrInvalidUTF8 {
		t.Errorf("scalar validator err = %v", err)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated tag", []byte{0x80}},
		{"bad field number", wire.AppendVarint(nil, 0)}, // tag with field 0
		{"truncated varint value", []byte{0x08, 0x80}},
		{"truncated string", append(wire.AppendTag(nil, 14, wire.TypeBytes), 0x7f)},
		{"group wire type", wire.AppendTag(nil, 1, wire.TypeStartGroup)},
		{"wrong wire type scalar", append(wire.AppendTag(nil, 1, wire.TypeFixed64), 1, 2, 3, 4, 5, 6, 7, 8)},
		{"truncated fixed", append(wire.AppendTag(nil, 8, wire.TypeFixed32), 1, 2)},
	}
	for _, c := range cases {
		bump := arena.NewBump(make([]byte, 1<<16))
		d := New(Options{})
		if _, err := d.Deserialize(everyLay, c.data, bump, 0); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, err := measureBase0(everyLay, c.data); err == nil {
			t.Errorf("%s: MeasureExact accepted", c.name)
		}
	}
}

func TestTruncatedPackedVarint(t *testing.T) {
	var data []byte
	data = wire.AppendTag(data, 1, wire.TypeBytes) // IntArray.values
	data = wire.AppendBytes(data, []byte{0x80})    // dangling continuation
	if _, err := measureBase0(intArrLay, data); err == nil {
		t.Error("Measure accepted truncated packed varint")
	}
	bump := arena.NewBump(make([]byte, 4096))
	if _, err := New(Options{}).Deserialize(intArrLay, data, bump, 0); err == nil {
		t.Error("Deserialize accepted truncated packed varint")
	}
}

func TestArenaExhaustion(t *testing.T) {
	m := protomsg.New(charDesc)
	m.SetString("data", strings.Repeat("x", 1000))
	data := m.Marshal(nil)
	bump := arena.NewBump(make([]byte, 64)) // far too small
	d := New(Options{})
	if _, err := d.Deserialize(charLay, data, bump, 0); err == nil {
		t.Error("exhausted arena accepted")
	}
}

func TestNonZeroBase(t *testing.T) {
	m := protomsg.New(everyDesc)
	m.SetString("s", strings.Repeat("spill", 10))
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 11)
	m.SetMessage("child", child)
	m.AppendNum("nums", 1)
	m.AppendNum("nums", 2)
	data := m.Marshal(nil)

	const base = 1 << 20
	bump := arena.NewBump(make([]byte, 1<<16))
	d := New(Options{})
	off, err := d.Deserialize(everyLay, data, bump, base)
	if err != nil {
		t.Fatal(err)
	}
	if off < base {
		t.Fatalf("root offset %d below base", off)
	}
	v := abi.MakeView(&abi.Region{Buf: bump.Bytes(), Base: base}, off, everyLay)
	if string(v.StrName("s")) != strings.Repeat("spill", 10) {
		t.Error("spilled string at non-zero base wrong")
	}
	cv, ok := v.MsgName("child")
	if !ok || cv.U32Name("id") != 11 {
		t.Error("child at non-zero base wrong")
	}
	if v.NumAtName("nums", 1) != 2 {
		t.Error("array at non-zero base wrong")
	}
	reserialize(t, v, data)
}

func TestStatsInstrumentation(t *testing.T) {
	m := protomsg.New(everyDesc)
	m.SetUint32("u32", 300) // 2-byte varint
	m.SetString("s", strings.Repeat("q", 50))
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 1)
	m.SetMessage("child", child)
	data := m.Marshal(nil)

	d := New(Options{ValidateUTF8: true})
	bump := arena.NewBump(make([]byte, 1<<16))
	if _, err := d.Deserialize(everyLay, data, bump, 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats
	if s.Messages != 2 {
		t.Errorf("Messages = %d, want 2", s.Messages)
	}
	if s.Fields != 4 {
		t.Errorf("Fields = %d, want 4", s.Fields)
	}
	if s.CopyBytes != 50 {
		t.Errorf("CopyBytes = %d, want 50", s.CopyBytes)
	}
	if s.UTF8Bytes != 50 {
		t.Errorf("UTF8Bytes = %d, want 50", s.UTF8Bytes)
	}
	if s.VarintBytes == 0 || s.ArenaBytes == 0 {
		t.Error("varint/arena counters empty")
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.CopyBytes != 100 {
		t.Error("Stats.Add broken")
	}
	sum.Reset()
	if sum != (Stats{}) {
		t.Error("Stats.Reset broken")
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	m := protomsg.New(intArrDesc)
	for i := 0; i < 512; i++ {
		m.AppendNum("values", uint64(i))
	}
	data := m.Marshal(nil)
	need, _ := measureBase0(intArrLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	// Warm up frame scratch.
	if _, err := d.Deserialize(intArrLay, data, bump, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		bump.Reset()
		if _, err := d.Deserialize(intArrLay, data, bump, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state deserialization allocates %.1f objects/op; paper requires 0", allocs)
	}
}

func TestExactSizeAcrossShapes(t *testing.T) {
	rng := mt19937.New(99)
	for trial := 0; trial < 50; trial++ {
		m := protomsg.New(everyDesc)
		if rng.Uint32n(2) == 0 {
			m.SetString("s", strings.Repeat("s", int(rng.Uint32n(100))))
		}
		n := int(rng.Uint32n(64))
		for i := 0; i < n; i++ {
			m.AppendNum("nums", uint64(rng.Uint32()))
		}
		k := int(rng.Uint32n(4))
		for i := 0; i < k; i++ {
			c := protomsg.New(smallDesc)
			c.SetUint32("id", rng.Uint32())
			m.AppendMessage("kids", c)
		}
		data := m.Marshal(nil)
		need, err := measureBase0(everyLay, data)
		if err != nil {
			t.Fatal(err)
		}
		bump := arena.NewBump(make([]byte, need))
		if _, err := New(Options{}).Deserialize(everyLay, data, bump, 0); err != nil {
			t.Fatalf("trial %d: deserialize into exact buffer failed: %v", trial, err)
		}
		if bump.Used() != need {
			t.Fatalf("trial %d: used %d != measured %d", trial, bump.Used(), need)
		}
	}
}

func TestEmptyMessage(t *testing.T) {
	v := roundTrip(t, smallLay, nil)
	if !v.Valid() {
		t.Error("empty message view invalid")
	}
	if v.HasName("id") || v.U32Name("id") != 0 {
		t.Error("empty message has set fields")
	}
	reserialize(t, v, nil)
}

func BenchmarkDeserializeInts512(b *testing.B) {
	rng := mt19937.New(mt19937.DefaultSeed)
	m := protomsg.New(intArrDesc)
	for i := 0; i < 512; i++ {
		shift := rng.Uint32n(32)
		m.AppendNum("values", uint64(rng.Uint32()>>shift))
	}
	data := m.Marshal(nil)
	need, _ := measureBase0(intArrLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.Deserialize(intArrLay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserializeChars8000(b *testing.B) {
	m := protomsg.New(charDesc)
	m.SetString("data", strings.Repeat("abcdefgh", 1000))
	data := m.Marshal(nil)
	need, _ := measureBase0(charLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.Deserialize(charLay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserializeSmall(b *testing.B) {
	m := protomsg.New(smallDesc)
	m.SetUint32("id", 4242)
	m.SetBool("flag", true)
	m.SetInt32("delta", -17)
	m.SetFloat("ratio", 0.75)
	data := m.Marshal(nil)
	need, _ := measureBase0(smallLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.Deserialize(smallLay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeView(b *testing.B) {
	m := protomsg.New(everyDesc)
	m.SetUint32("u32", 77)
	m.SetString("s", strings.Repeat("x", 64))
	for i := 0; i < 32; i++ {
		m.AppendNum("nums", uint64(i))
	}
	data := m.Marshal(nil)
	need, _ := measureBase0(everyLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{})
	off, err := d.Deserialize(everyLay, data, bump, 0)
	if err != nil {
		b.Fatal(err)
	}
	v := abi.MakeView(&abi.Region{Buf: bump.Bytes(), Base: 0}, off, everyLay)
	buf := make([]byte, 0, len(data))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = Serialize(v, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
