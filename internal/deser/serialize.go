package deser

import (
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/wire"
)

// Serialize appends the canonical proto3 encoding of the arena object v to
// buf. It is the inverse of Deserialize and produces byte-identical output
// to protomsg.Marshal for the same logical content (fields in number order,
// zero values omitted).
//
// In the datapath this runs on the DPU for the response direction: the host
// writes a response *object* into the shared region, and the DPU serializes
// it into the xRPC response (Sec. III-A).
func Serialize(v abi.View, buf []byte) ([]byte, error) {
	if !v.Valid() {
		return buf, fmt.Errorf("deser: serialize of invalid view")
	}
	return serializeBody(v, buf, 0, DefaultMaxDepth)
}

// SerializedSize returns the encoded size of v without encoding it.
func SerializedSize(v abi.View) (int, error) {
	if !v.Valid() {
		return 0, fmt.Errorf("deser: size of invalid view")
	}
	return bodySize(v, 0, DefaultMaxDepth)
}

// fieldWireBits converts a slot bit pattern into its varint wire value.
func fieldWireBits(k protodesc.Kind, bits uint64) uint64 {
	switch k {
	case protodesc.KindInt32, protodesc.KindEnum:
		return uint64(int64(int32(uint32(bits))))
	case protodesc.KindSint32:
		return wire.EncodeZigZag(int64(int32(uint32(bits))))
	case protodesc.KindSint64:
		return wire.EncodeZigZag(int64(bits))
	default:
		return bits
	}
}

func scalarSize(k protodesc.Kind, bits uint64) int {
	switch k.WireType() {
	case wire.TypeFixed32:
		return 4
	case wire.TypeFixed64:
		return 8
	default:
		return wire.SizeVarint(fieldWireBits(k, bits))
	}
}

func appendScalarValue(b []byte, k protodesc.Kind, bits uint64) []byte {
	switch k.WireType() {
	case wire.TypeFixed32:
		return wire.AppendFixed32(b, uint32(bits))
	case wire.TypeFixed64:
		return wire.AppendFixed64(b, bits)
	default:
		return wire.AppendVarint(b, fieldWireBits(k, bits))
	}
}

// scalarBits reads a singular scalar slot as raw bits.
func scalarBits(v abi.View, idx int, size uint32) uint64 {
	switch size {
	case 1:
		if v.Bool(idx) {
			return 1
		}
		return 0
	case 4:
		return uint64(v.U32(idx))
	default:
		return v.U64(idx)
	}
}

func bodySize(v abi.View, depth, maxDepth int) (int, error) {
	if depth >= maxDepth {
		return 0, ErrDepthExceeded
	}
	total := 0
	for i := range v.Lay.Fields {
		fl := &v.Lay.Fields[i]
		f := fl.Desc
		switch {
		case f.Repeated && fl.ElemSize != 0:
			n := v.Len(i)
			if n == 0 {
				continue
			}
			if f.Packed {
				body := 0
				for j := 0; j < n; j++ {
					body += scalarSize(f.Kind, v.NumAt(i, j))
				}
				total += wire.SizeTag(f.Number) + wire.SizeBytes(body)
			} else {
				for j := 0; j < n; j++ {
					total += wire.SizeTag(f.Number) + scalarSize(f.Kind, v.NumAt(i, j))
				}
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			for j, n := 0, v.Len(i); j < n; j++ {
				total += wire.SizeTag(f.Number) + wire.SizeBytes(len(v.StrAt(i, j)))
			}
		case f.Repeated:
			for j, n := 0, v.Len(i); j < n; j++ {
				child, ok := v.MsgAt(i, j)
				if !ok {
					return 0, fmt.Errorf("deser: broken element ref in %s.%s", v.Lay.Msg.Name, f.Name)
				}
				sub, err := bodySize(child, depth+1, maxDepth)
				if err != nil {
					return 0, err
				}
				total += wire.SizeTag(f.Number) + wire.SizeBytes(sub)
			}
		case f.Kind == protodesc.KindMessage:
			child, ok := v.Msg(i)
			if !ok {
				continue
			}
			sub, err := bodySize(child, depth+1, maxDepth)
			if err != nil {
				return 0, err
			}
			total += wire.SizeTag(f.Number) + wire.SizeBytes(sub)
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			s := v.Str(i)
			if len(s) == 0 {
				continue
			}
			total += wire.SizeTag(f.Number) + wire.SizeBytes(len(s))
		default:
			bits := scalarBits(v, i, fl.Size)
			if bits == 0 {
				continue
			}
			total += wire.SizeTag(f.Number) + scalarSize(f.Kind, bits)
		}
	}
	return total, nil
}

func serializeBody(v abi.View, b []byte, depth, maxDepth int) ([]byte, error) {
	if depth >= maxDepth {
		return b, ErrDepthExceeded
	}
	for i := range v.Lay.Fields {
		fl := &v.Lay.Fields[i]
		f := fl.Desc
		switch {
		case f.Repeated && fl.ElemSize != 0:
			n := v.Len(i)
			if n == 0 {
				continue
			}
			if f.Packed {
				body := 0
				for j := 0; j < n; j++ {
					body += scalarSize(f.Kind, v.NumAt(i, j))
				}
				b = wire.AppendTag(b, f.Number, wire.TypeBytes)
				b = wire.AppendVarint(b, uint64(body))
				for j := 0; j < n; j++ {
					b = appendScalarValue(b, f.Kind, v.NumAt(i, j))
				}
			} else {
				for j := 0; j < n; j++ {
					b = wire.AppendTag(b, f.Number, f.Kind.WireType())
					b = appendScalarValue(b, f.Kind, v.NumAt(i, j))
				}
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			for j, n := 0, v.Len(i); j < n; j++ {
				b = wire.AppendTag(b, f.Number, wire.TypeBytes)
				b = wire.AppendBytes(b, v.StrAt(i, j))
			}
		case f.Repeated:
			for j, n := 0, v.Len(i); j < n; j++ {
				child, ok := v.MsgAt(i, j)
				if !ok {
					return b, fmt.Errorf("deser: broken element ref in %s.%s", v.Lay.Msg.Name, f.Name)
				}
				sub, err := bodySize(child, depth+1, maxDepth)
				if err != nil {
					return b, err
				}
				b = wire.AppendTag(b, f.Number, wire.TypeBytes)
				b = wire.AppendVarint(b, uint64(sub))
				if b, err = serializeBody(child, b, depth+1, maxDepth); err != nil {
					return b, err
				}
			}
		case f.Kind == protodesc.KindMessage:
			child, ok := v.Msg(i)
			if !ok {
				continue
			}
			sub, err := bodySize(child, depth+1, maxDepth)
			if err != nil {
				return b, err
			}
			b = wire.AppendTag(b, f.Number, wire.TypeBytes)
			b = wire.AppendVarint(b, uint64(sub))
			if b, err = serializeBody(child, b, depth+1, maxDepth); err != nil {
				return b, err
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			s := v.Str(i)
			if len(s) == 0 {
				continue
			}
			b = wire.AppendTag(b, f.Number, wire.TypeBytes)
			b = wire.AppendBytes(b, s)
		default:
			bits := scalarBits(v, i, fl.Size)
			if bits == 0 {
				continue
			}
			b = wire.AppendTag(b, f.Number, f.Kind.WireType())
			b = appendScalarValue(b, f.Kind, bits)
		}
	}
	return b, nil
}
