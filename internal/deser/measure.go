package deser

import (
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/wire"
)

// Measure computes an upper bound on the arena bytes Deserialize will
// consume for data, including alignment padding. The DPU runs Measure before
// allocating the block from the send buffer, so blocks are sized exactly and
// the send-buffer allocator never over-commits.
//
// The bound is tight up to per-allocation alignment padding (at most 8 bytes
// per allocation, counted here pessimistically).
func Measure(lay *abi.Layout, data []byte) (int, error) {
	n, err := measureBody(lay, data, 0, DefaultMaxDepth)
	if err != nil {
		return 0, err
	}
	// Root-object alignment plus the offset-0 guard.
	return n + 16, nil
}

func measureBody(lay *abi.Layout, body []byte, depth, maxDepth int) (int, error) {
	if depth >= maxDepth {
		return 0, ErrDepthExceeded
	}
	total := int(lay.Size) + abi.ObjectAlign // object + worst-case padding

	// Per-field repeated accounting (element counts translate into one
	// array allocation each).
	var counts []uint32
	pos := 0
	for pos < len(body) {
		tagv, n := wire.Varint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad tag", ErrMalformed)
		}
		pos += n
		num, wt, err := wire.DecodeTag(tagv)
		if err != nil {
			return 0, err
		}
		f := lay.Msg.FieldByNumber(num)
		if f == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		switch {
		case f.Repeated && fl.ElemSize != 0:
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			if wt == wire.TypeBytes {
				payload, n := wire.Bytes(body[pos:])
				if n == 0 {
					return 0, fmt.Errorf("%w: truncated packed field", ErrMalformed)
				}
				pos += n
				if fs := f.Kind.FixedSize(); fs != 0 {
					if len(payload)%fs != 0 {
						return 0, fmt.Errorf("%w: packed fixed payload not a multiple of %d", ErrMalformed, fs)
					}
					counts[f.Index] += uint32(len(payload) / fs)
				} else {
					for _, c := range payload {
						if c < 0x80 {
							counts[f.Index]++
						}
					}
					if len(payload) > 0 && payload[len(payload)-1] >= 0x80 {
						return 0, fmt.Errorf("%w: packed varint payload truncated", ErrMalformed)
					}
				}
			} else {
				skipped, err := wire.SkipValue(body[pos:], wt)
				if err != nil {
					return 0, err
				}
				pos += skipped
				counts[f.Index]++
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string element", ErrMalformed)
			}
			pos += n
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			counts[f.Index]++
			if len(payload) > abi.SSOCapacity {
				total += len(payload)
			}
		case f.Repeated: // repeated message
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated message element", ErrMalformed)
			}
			pos += n
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			counts[f.Index]++
			sub, err := measureBody(fl.Child, payload, depth+1, maxDepth)
			if err != nil {
				return 0, err
			}
			total += sub
		case f.Kind == protodesc.KindMessage:
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated nested message", ErrMalformed)
			}
			pos += n
			sub, err := measureBody(fl.Child, payload, depth+1, maxDepth)
			if err != nil {
				return 0, err
			}
			total += sub
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				total += len(payload)
			}
		default:
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
		}
	}
	// One array allocation (plus padding) per non-empty repeated field.
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fl := &lay.Fields[i]
		var elem int
		switch {
		case fl.ElemSize != 0:
			elem = int(fl.ElemSize)
		case fl.Kind == protodesc.KindMessage:
			elem = abi.RefSize
		default:
			elem = abi.StringRecordSize
		}
		total += int(c)*elem + 8
	}
	return total, nil
}
