package deser

import (
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/wire"
)

// Measure computes an upper bound on the arena bytes Deserialize will
// consume for data, including alignment padding. The DPU runs Measure before
// allocating the block from the send buffer, so blocks are sized exactly and
// the send-buffer allocator never over-commits.
//
// The bound is tight up to per-allocation alignment padding (at most 8 bytes
// per allocation, counted here pessimistically).
func Measure(lay *abi.Layout, data []byte) (int, error) {
	n, err := measureBody(lay, data, 0, DefaultMaxDepth)
	if err != nil {
		return 0, err
	}
	// Root-object alignment plus the offset-0 guard.
	return n + 16, nil
}

func measureBody(lay *abi.Layout, body []byte, depth, maxDepth int) (int, error) {
	if depth >= maxDepth {
		return 0, ErrDepthExceeded
	}
	total := int(lay.Size) + abi.ObjectAlign // object + worst-case padding

	// Per-field repeated accounting (element counts translate into one
	// array allocation each).
	var counts []uint32
	pos := 0
	for pos < len(body) {
		tagv, n := wire.Varint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad tag", ErrMalformed)
		}
		pos += n
		num, wt, err := wire.DecodeTag(tagv)
		if err != nil {
			return 0, err
		}
		f := lay.Msg.FieldByNumber(num)
		if f == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		switch {
		case f.Repeated && fl.ElemSize != 0:
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			if wt == wire.TypeBytes {
				payload, n := wire.Bytes(body[pos:])
				if n == 0 {
					return 0, fmt.Errorf("%w: truncated packed field", ErrMalformed)
				}
				pos += n
				if fs := f.Kind.FixedSize(); fs != 0 {
					if len(payload)%fs != 0 {
						return 0, fmt.Errorf("%w: packed fixed payload not a multiple of %d", ErrMalformed, fs)
					}
					counts[f.Index] += uint32(len(payload) / fs)
				} else {
					for _, c := range payload {
						if c < 0x80 {
							counts[f.Index]++
						}
					}
					if len(payload) > 0 && payload[len(payload)-1] >= 0x80 {
						return 0, fmt.Errorf("%w: packed varint payload truncated", ErrMalformed)
					}
				}
			} else {
				skipped, err := wire.SkipValue(body[pos:], wt)
				if err != nil {
					return 0, err
				}
				pos += skipped
				counts[f.Index]++
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string element", ErrMalformed)
			}
			pos += n
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			counts[f.Index]++
			if len(payload) > abi.SSOCapacity {
				total += len(payload)
			}
		case f.Repeated: // repeated message
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated message element", ErrMalformed)
			}
			pos += n
			if counts == nil {
				counts = make([]uint32, len(lay.Fields))
			}
			counts[f.Index]++
			sub, err := measureBody(fl.Child, payload, depth+1, maxDepth)
			if err != nil {
				return 0, err
			}
			total += sub
		case f.Kind == protodesc.KindMessage:
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated nested message", ErrMalformed)
			}
			pos += n
			sub, err := measureBody(fl.Child, payload, depth+1, maxDepth)
			if err != nil {
				return 0, err
			}
			total += sub
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				total += len(payload)
			}
		default:
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
		}
	}
	// One array allocation (plus padding) per non-empty repeated field.
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fl := &lay.Fields[i]
		total += int(c)*elemSize(fl) + 8
	}
	return total, nil
}

// elemSize returns the arena element width of a repeated field.
func elemSize(fl *abi.FieldLayout) int {
	switch {
	case fl.ElemSize != 0:
		return int(fl.ElemSize)
	case fl.Kind == protodesc.KindMessage:
		return abi.RefSize
	default:
		return abi.StringRecordSize
	}
}

// bumpSizer mirrors arena.Bump's offset arithmetic without a backing
// buffer. Alignment is relative to offset 0, exactly as in Bump.Alloc.
type bumpSizer struct{ off int }

func (s *bumpSizer) alloc(n, align int) {
	s.off = ((s.off + align - 1) &^ (align - 1)) + n
}

// MeasureExact computes exactly the arena bytes Deserialize will consume
// for data when decoding into a fresh bump whose base region offset is
// nonzero (the datapath case; base 0 prepends an 8-byte NullRef guard that
// this function does not count). It replays the deserializer's allocation
// sequence — object, array pre-allocations, string spills, nested objects
// — through the same alignment arithmetic, without writing anything.
//
// The multi-core DPU pipeline (reserve → parallel build → commit) depends
// on exactness: a slot's stride is fixed when it is reserved, before the
// build runs, so an overestimate would pad blocks differently from the
// serial path and an underestimate would overflow the slot.
//
// Runtime-only failures (UTF-8 validation, arena exhaustion) are not
// predicted here; structural errors (malformed wire data, wire-type
// mismatches, duplicate singular messages, excessive depth) are reported
// exactly as Deserialize would.
func MeasureExact(lay *abi.Layout, data []byte) (int, error) {
	var s bumpSizer
	if err := measureExactBody(lay, data, &s, 0, DefaultMaxDepth); err != nil {
		return 0, err
	}
	return s.off, nil
}

func measureExactBody(lay *abi.Layout, body []byte, s *bumpSizer, depth, maxDepth int) error {
	if depth >= maxDepth {
		return ErrDepthExceeded
	}
	s.alloc(int(lay.Size), abi.ObjectAlign)

	// Mirror fill: the count pass and array pre-allocations run first, in
	// field-index order.
	hasRepeated := false
	for i := range lay.Fields {
		if lay.Fields[i].Repeated {
			hasRepeated = true
			break
		}
	}
	var counts []uint32
	var seen []bool
	if hasRepeated {
		counts = make([]uint32, len(lay.Fields))
		if err := countRepeated(lay, body, counts); err != nil {
			return err
		}
		for i := range lay.Fields {
			fl := &lay.Fields[i]
			if !fl.Repeated || counts[i] == 0 {
				continue
			}
			elem := elemSize(fl)
			alignTo := elem
			if alignTo > 8 {
				alignTo = 8
			}
			s.alloc(int(counts[i])*elem, alignTo)
		}
	}

	// Mirror pass 2 in wire order: string spills and nested objects are the
	// only allocations left.
	pos := 0
	for pos < len(body) {
		tagv, n := wire.Varint(body[pos:])
		if n <= 0 {
			return fmt.Errorf("%w: bad tag", ErrMalformed)
		}
		pos += n
		num, wt, err := wire.DecodeTag(tagv)
		if err != nil {
			return err
		}
		f := lay.Msg.FieldByNumber(num)
		if f == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		switch {
		case f.Repeated && fl.ElemSize != 0:
			// Scalar elements land in the pre-counted array; packed payloads
			// were validated by the count pass. Unpacked elements must still
			// match the scalar wire type, as the fill enforces.
			if wt == wire.TypeBytes {
				payload, n := wire.Bytes(body[pos:])
				if n == 0 {
					return fmt.Errorf("%w: truncated packed field", ErrMalformed)
				}
				_ = payload
				pos += n
			} else {
				if wt != f.Kind.WireType() {
					return ErrWireTypeMismatch
				}
				skipped, err := wire.SkipValue(body[pos:], wt)
				if err != nil {
					return err
				}
				pos += skipped
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string element", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				s.alloc(len(payload), 1)
			}
		case f.Repeated: // repeated message
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated message element", ErrMalformed)
			}
			pos += n
			if err := measureExactBody(fl.Child, payload, s, depth+1, maxDepth); err != nil {
				return err
			}
		case f.Kind == protodesc.KindMessage:
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated nested message", ErrMalformed)
			}
			pos += n
			if seen == nil {
				seen = make([]bool, len(lay.Fields))
			}
			if seen[f.Index] {
				return fmt.Errorf("%w: %s.%s", ErrDuplicateSubfield, lay.Msg.Name, f.Name)
			}
			seen[f.Index] = true
			if err := measureExactBody(fl.Child, payload, s, depth+1, maxDepth); err != nil {
				return err
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				s.alloc(len(payload), 1)
			}
		default: // singular scalar
			if wt != f.Kind.WireType() {
				return ErrWireTypeMismatch
			}
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
		}
	}
	return nil
}
