package deser

import (
	"errors"
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/wire"
)

// elemSize returns the arena element width of a repeated field.
func elemSize(fl *abi.FieldLayout) int {
	switch {
	case fl.ElemSize != 0:
		return int(fl.ElemSize)
	case fl.Kind == protodesc.KindMessage:
		return abi.RefSize
	default:
		return abi.StringRecordSize
	}
}

// bumpSizer mirrors arena.Bump's offset arithmetic without a backing
// buffer. Alignment is relative to offset 0, exactly as in Bump.Alloc.
type bumpSizer struct{ off int }

func (s *bumpSizer) alloc(n, align int) {
	s.off = ((s.off + align - 1) &^ (align - 1)) + n
}

// MeasureExact computes exactly the arena bytes Deserialize will consume
// for data when decoding into a fresh bump whose base region offset is
// nonzero (the datapath case; base 0 prepends an 8-byte NullRef guard that
// this function does not count). It replays the deserializer's allocation
// sequence — object, array pre-allocations, string spills, nested objects
// — through the same alignment arithmetic, without writing anything.
//
// The multi-core DPU pipeline (reserve → parallel build → commit) depends
// on exactness: a slot's stride is fixed when it is reserved, before the
// build runs, so an overestimate would pad blocks differently from the
// serial path and an underestimate would overflow the slot.
//
// Runtime-only failures (UTF-8 validation, arena exhaustion) are not
// predicted here; structural errors (malformed wire data, wire-type
// mismatches, duplicate singular messages, excessive depth) are reported
// exactly as Deserialize would.
func MeasureExact(lay *abi.Layout, data []byte) (int, error) {
	var s bumpSizer
	if err := measureExactBody(lay, data, &s, 0, DefaultMaxDepth); err != nil {
		return 0, err
	}
	return s.off, nil
}

func measureExactBody(lay *abi.Layout, body []byte, s *bumpSizer, depth, maxDepth int) error {
	if depth >= maxDepth {
		return ErrDepthExceeded
	}
	s.alloc(int(lay.Size), abi.ObjectAlign)

	// Mirror fill: the count pass and array pre-allocations run first, in
	// field-index order.
	hasRepeated := false
	for i := range lay.Fields {
		if lay.Fields[i].Repeated {
			hasRepeated = true
			break
		}
	}
	var counts []uint32
	var seen []bool
	if hasRepeated {
		counts = make([]uint32, len(lay.Fields))
		if err := countRepeated(lay, body, counts); err != nil {
			return err
		}
		for i := range lay.Fields {
			fl := &lay.Fields[i]
			if !fl.Repeated || counts[i] == 0 {
				continue
			}
			elem := elemSize(fl)
			alignTo := elem
			if alignTo > 8 {
				alignTo = 8
			}
			s.alloc(int(counts[i])*elem, alignTo)
		}
	}

	// Mirror pass 2 in wire order: string spills and nested objects are the
	// only allocations left.
	pos := 0
	for pos < len(body) {
		num, wt, n, err := wire.Tag(body[pos:])
		if err != nil {
			if errors.Is(err, wire.ErrInvalidTag) {
				return err
			}
			return fmt.Errorf("%w: bad tag", ErrMalformed)
		}
		pos += n
		f := lay.Msg.FieldByNumber(num)
		if f == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			continue
		}
		fl := &lay.Fields[f.Index]
		switch {
		case f.Repeated && fl.ElemSize != 0:
			// Scalar elements land in the pre-counted array; packed payloads
			// were validated by the count pass. Unpacked elements must still
			// match the scalar wire type, as the fill enforces.
			if wt == wire.TypeBytes {
				payload, n := wire.Bytes(body[pos:])
				if n == 0 {
					return fmt.Errorf("%w: truncated packed field", ErrMalformed)
				}
				_ = payload
				pos += n
			} else {
				if wt != f.Kind.WireType() {
					return ErrWireTypeMismatch
				}
				skipped, err := wire.SkipValue(body[pos:], wt)
				if err != nil {
					return err
				}
				pos += skipped
			}
		case f.Repeated && (f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes):
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string element", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				s.alloc(len(payload), 1)
			}
		case f.Repeated: // repeated message
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated message element", ErrMalformed)
			}
			pos += n
			if err := measureExactBody(fl.Child, payload, s, depth+1, maxDepth); err != nil {
				return err
			}
		case f.Kind == protodesc.KindMessage:
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated nested message", ErrMalformed)
			}
			pos += n
			if seen == nil {
				seen = make([]bool, len(lay.Fields))
			}
			if seen[f.Index] {
				return fmt.Errorf("%w: %s.%s", ErrDuplicateSubfield, lay.Msg.Name, f.Name)
			}
			seen[f.Index] = true
			if err := measureExactBody(fl.Child, payload, s, depth+1, maxDepth); err != nil {
				return err
			}
		case f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes:
			if wt != wire.TypeBytes {
				return wireErr(lay, f, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			pos += n
			if len(payload) > abi.SSOCapacity {
				s.alloc(len(payload), 1)
			}
		default: // singular scalar
			if wt != f.Kind.WireType() {
				return ErrWireTypeMismatch
			}
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
		}
	}
	return nil
}
