package deser

import (
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protodsl"
	"dpurpc/internal/protomsg"
)

// The payload benchmarks compare the two ways a large bytes payload can
// reach the arena object on the planned path: copied through the object
// arena (replayString, one memcpy into the spill area) versus
// scatter-gather (FillSG writes a 16-byte offset reference; PlaceSegments
// is the single memcpy into the segment area, isolated below so the fill's
// O(1) cost is visible). Snapshot lives in BENCH_payload.json (make
// bench-payload), compared by make bench-check.

const payloadSchema = `
syntax = "proto3";
package pb;
message Blob { bytes data = 1; }
`

var (
	payloadBlobDesc *protodesc.Message
	payloadBlobLay  *abi.Layout
)

func init() {
	f, err := protodsl.Parse("payload_bench.proto", payloadSchema)
	if err != nil {
		panic(err)
	}
	reg := protodesc.NewRegistry()
	if err := reg.Register(f); err != nil {
		panic(err)
	}
	payloadBlobDesc = reg.Message("pb.Blob")
	payloadBlobLay = abi.ComputeAll([]*protodesc.Message{payloadBlobDesc})[0]
}

func payloadBlobData(n int) []byte {
	rng := mt19937.New(mt19937.DefaultSeed)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Uint32())
	}
	m := protomsg.New(payloadBlobDesc)
	if err := m.SetBytes("data", buf); err != nil {
		panic(err)
	}
	return m.Marshal(nil)
}

// payloadSizes is the benchmark grid, up to the 1 MiB acceptance point.
var payloadSizes = []struct {
	name string
	n    int
}{
	{"4KiB", 4 << 10},
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
}

// payloadBase keeps the benchmarks off base 0 (no NullRef guard needed),
// matching how the datapath fills at a block's region offset.
const payloadBase = 64

func BenchmarkPayloadCopyFill(b *testing.B) {
	for _, sz := range payloadSizes {
		b.Run(sz.name, func(b *testing.B) {
			data := payloadBlobData(sz.n)
			d := New(Options{})
			p := PlanFor(payloadBlobLay)
			no, err := d.Scan(p, data)
			if err != nil {
				b.Fatal(err)
			}
			defer no.Release()
			bump := arena.NewBump(make([]byte, no.Need()))
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bump.Reset()
				if _, err := d.Fill(p, data, no, bump, payloadBase); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPayloadSGFill(b *testing.B) {
	for _, sz := range payloadSizes {
		b.Run(sz.name, func(b *testing.B) {
			data := payloadBlobData(sz.n)
			d := New(Options{SGPayloadMin: 1024})
			p := PlanFor(payloadBlobLay)
			no, err := d.Scan(p, data)
			if err != nil {
				b.Fatal(err)
			}
			defer no.Release()
			if no.SegCount() != 1 {
				b.Fatalf("SegCount = %d, want 1", no.SegCount())
			}
			objArea := alignUp8(no.Need())
			bump := arena.NewBump(make([]byte, objArea))
			segBase := uint64(payloadBase + objArea)
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bump.Reset()
				if _, err := d.FillSG(p, data, no, bump, payloadBase, segBase); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPayloadSGPlace(b *testing.B) {
	for _, sz := range payloadSizes {
		b.Run(sz.name, func(b *testing.B) {
			data := payloadBlobData(sz.n)
			d := New(Options{SGPayloadMin: 1024})
			p := PlanFor(payloadBlobLay)
			no, err := d.Scan(p, data)
			if err != nil {
				b.Fatal(err)
			}
			defer no.Release()
			segDst := make([]byte, no.SegBytes())
			refs := make([]SegRef, 0, no.SegCount())
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refs = d.PlaceSegments(data, no, segDst, refs[:0])
			}
			if len(refs) != 1 {
				b.Fatalf("refs = %d, want 1", len(refs))
			}
		})
	}
}
