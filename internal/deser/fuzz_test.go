package deser

import (
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/protomsg"
)

// FuzzDeserialize feeds arbitrary bytes to MeasureExact/Deserialize for every
// benchmark layout. Run with `go test -fuzz FuzzDeserialize ./internal/deser`
// for continuous fuzzing; without -fuzz the seed corpus runs as a
// regression test. Invariants: no panic, exact sizing honored, and any
// accepted object verifies and re-serializes.
func FuzzDeserialize(f *testing.F) {
	m := protomsg.New(everyDesc)
	m.SetString("s", "seed")
	m.SetUint32("u32", 7)
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 1)
	m.SetMessage("child", child)
	m.AppendNum("nums", 5)
	f.Add(m.Marshal(nil))

	ia := protomsg.New(intArrDesc)
	for i := 0; i < 20; i++ {
		ia.AppendNum("values", uint64(i)<<uint(i))
	}
	f.Add(ia.Marshal(nil))

	ca := protomsg.New(charDesc)
	ca.SetString("data", "fuzz seed data: ascii only")
	f.Add(ca.Marshal(nil))

	f.Add([]byte{})
	f.Add([]byte{0x08, 0x96, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	layouts := []*abi.Layout{smallLay, everyLay, intArrLay, charLay, deepLay}
	buf := make([]byte, 1<<20)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, lay := range layouts {
			need, err := measureBase0(lay, data)
			if err != nil {
				continue
			}
			if need > len(buf) {
				t.Skip("demand beyond scratch") // bounded-demand asserted elsewhere
			}
			bump := arena.NewBump(buf[:need])
			d := New(Options{ValidateUTF8: true})
			off, err := d.Deserialize(lay, data, bump, 0)
			if err != nil {
				continue
			}
			if bump.Used() > need {
				t.Fatalf("exact size %d exceeded: %d", need, bump.Used())
			}
			v := abi.MakeView(&abi.Region{Buf: bump.Bytes()}, off, lay)
			if err := abi.Verify(v); err != nil {
				t.Fatalf("accepted object fails Verify: %v", err)
			}
			if _, err := Serialize(v, nil); err != nil {
				t.Fatalf("accepted object cannot re-serialize: %v", err)
			}
		}
	})
}
