package deser

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/protomsg"
	"dpurpc/internal/wire"
)

// planShapes returns one representative message per benchmark layout,
// exercising every action kind the compiler emits.
func planShapes() []struct {
	name string
	lay  *abi.Layout
	data []byte
} {
	rng := mt19937.New(mt19937.DefaultSeed)

	small := protomsg.New(smallDesc)
	small.SetUint32("id", 4242)
	small.SetBool("flag", true)
	small.SetInt32("delta", -17)
	small.SetFloat("ratio", 0.75)

	ints := protomsg.New(intArrDesc)
	for i := 0; i < 512; i++ {
		shift := rng.Uint32n(32)
		ints.AppendNum("values", uint64(rng.Uint32()>>shift))
	}

	chars := protomsg.New(charDesc)
	chars.SetString("data", strings.Repeat("abcdefgh", 1000))

	every := protomsg.New(everyDesc)
	every.SetBool("b", true)
	every.SetInt32("s32", -77)
	every.SetUint64("u64", 1<<60)
	every.SetUint32("f32", 0xcafebabe)
	every.SetDouble("db", -2.25)
	every.SetString("s", strings.Repeat("spill", 10))
	every.SetBytes("raw", bytes.Repeat([]byte{7}, 100))
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 5)
	every.SetMessage("child", child)
	for i := 0; i < 50; i++ {
		every.AppendNum("nums", uint64(i*7))
	}
	every.AppendNum("zig", ^uint64(2)) // -3 as two's complement
	for i := 0; i < 9; i++ {
		every.AppendNum("stamps", uint64(1)<<uint(i*7))
	}
	every.AppendNum("flags", 1)
	every.AppendString("names", "tiny")
	every.AppendString("names", strings.Repeat("long", 10))
	every.AppendString("names", "")
	for i := 0; i < 3; i++ {
		k := protomsg.New(smallDesc)
		k.SetUint32("id", uint32(100+i))
		every.AppendMessage("kids", k)
	}

	deep := protomsg.New(deepDesc)
	deep.SetUint32("n", 0)
	for i := 1; i < 20; i++ {
		next := protomsg.New(deepDesc)
		next.SetUint32("n", uint32(i))
		next.SetMessage("inner", deep)
		deep = next
	}

	return []struct {
		name string
		lay  *abi.Layout
		data []byte
	}{
		{"Small", smallLay, small.Marshal(nil)},
		{"IntArray", intArrLay, ints.Marshal(nil)},
		{"CharArray", charLay, chars.Marshal(nil)},
		{"Everything", everyLay, every.Marshal(nil)},
		{"Deep", deepLay, deep.Marshal(nil)},
	}
}

// TestPlannedByteIdentity is the tentpole pin: for every shape and at both a
// zero and a nonzero region base, the planned Scan+Fill must produce an
// arena byte-identical to the interpretive Deserialize, the same root
// offset, and an exact Need.
func TestPlannedByteIdentity(t *testing.T) {
	for _, c := range planShapes() {
		for _, base := range []uint64{0, 4096} {
			need, err := MeasureExact(c.lay, c.data)
			if err != nil {
				t.Fatalf("%s: MeasureExact: %v", c.name, err)
			}
			guard := 0
			if base == 0 {
				guard = GuardBytes
			}
			di := New(Options{ValidateUTF8: true})
			bi := arena.NewBump(make([]byte, need+guard))
			ioff, err := di.Deserialize(c.lay, c.data, bi, base)
			if err != nil {
				t.Fatalf("%s: Deserialize: %v", c.name, err)
			}

			p := PlanFor(c.lay)
			dp := New(Options{ValidateUTF8: true})
			no, err := dp.Scan(p, c.data)
			if err != nil {
				t.Fatalf("%s: Scan: %v", c.name, err)
			}
			if no.Need() != need {
				t.Fatalf("%s: Need %d != MeasureExact %d", c.name, no.Need(), need)
			}
			bp := arena.NewBump(make([]byte, no.Need()+guard))
			poff, err := dp.Fill(p, c.data, no, bp, base)
			no.Release()
			if err != nil {
				t.Fatalf("%s: Fill: %v", c.name, err)
			}
			if poff != ioff {
				t.Fatalf("%s base %d: root offset %d != interpretive %d", c.name, base, poff, ioff)
			}
			if !bytes.Equal(bp.Bytes(), bi.Bytes()) {
				t.Fatalf("%s base %d: planned arena diverges from interpretive", c.name, base)
			}
			if bp.Used() != bi.Used() {
				t.Fatalf("%s base %d: used %d != interpretive %d", c.name, base, bp.Used(), bi.Used())
			}

			// DeserializePlanned (the fused entry point) must agree too.
			df := New(Options{ValidateUTF8: true})
			bf := arena.NewBump(make([]byte, need+guard))
			foff, err := df.DeserializePlanned(p, c.data, bf, base)
			if err != nil {
				t.Fatalf("%s: DeserializePlanned: %v", c.name, err)
			}
			if foff != ioff || !bytes.Equal(bf.Bytes(), bi.Bytes()) {
				t.Fatalf("%s base %d: DeserializePlanned diverges", c.name, base)
			}
		}
	}
}

// TestPlannedStatsParity: the single pass must charge exactly the cycle-model
// inputs the interpretive path charged, plus the two new fields that tell
// the model decoded work from replayed work apart.
func TestPlannedStatsParity(t *testing.T) {
	for _, c := range planShapes() {
		need, err := measureBase0(c.lay, c.data)
		if err != nil {
			t.Fatal(err)
		}
		di := New(Options{ValidateUTF8: true})
		bi := arena.NewBump(make([]byte, need))
		if _, err := di.Deserialize(c.lay, c.data, bi, 0); err != nil {
			t.Fatal(err)
		}
		dp := New(Options{ValidateUTF8: true})
		bp := arena.NewBump(make([]byte, need))
		if _, err := dp.DeserializePlanned(PlanFor(c.lay), c.data, bp, 0); err != nil {
			t.Fatal(err)
		}
		is, ps := di.Stats, dp.Stats
		if ps.VarintBytes != is.VarintBytes || ps.FixedBytes != is.FixedBytes ||
			ps.UTF8Bytes != is.UTF8Bytes || ps.Fields != is.Fields ||
			ps.Messages != is.Messages || ps.ArenaBytes != is.ArenaBytes {
			t.Errorf("%s: planned stats %+v diverge from interpretive %+v", c.name, ps, is)
		}
		if ps.CopyBytes > is.CopyBytes {
			t.Errorf("%s: planned CopyBytes %d > interpretive %d", c.name, ps.CopyBytes, is.CopyBytes)
		}
		if ps.ScannedBytes != uint64(len(c.data)) {
			t.Errorf("%s: ScannedBytes = %d, want %d", c.name, ps.ScannedBytes, len(c.data))
		}
		if is.ScannedBytes != 0 || is.ReplayedBytes != 0 {
			t.Errorf("%s: interpretive path charged scan/replay bytes: %+v", c.name, is)
		}
	}
}

// TestPlannedErrorParity: on single-defect inputs the planned scan must
// report the same sentinel error the interpretive path reports. (Inputs
// with several independent defects may legitimately report them in a
// different order; see the package comment in plan.go.)
func TestPlannedErrorParity(t *testing.T) {
	overDeep := protomsg.New(deepDesc)
	overDeep.SetUint32("n", 0)
	for i := 0; i < DefaultMaxDepth+5; i++ {
		next := protomsg.New(deepDesc)
		next.SetMessage("inner", overDeep)
		overDeep = next
	}
	dupChild := func() []byte {
		child := protomsg.New(smallDesc)
		child.SetUint32("id", 1)
		m := protomsg.New(everyDesc)
		m.SetMessage("child", child)
		one := m.Marshal(nil)
		return append(append([]byte{}, one...), one...)
	}()

	cases := []struct {
		name string
		lay  *abi.Layout
		data []byte
		want error
	}{
		{"truncated tag", everyLay, []byte{0x80}, ErrMalformed},
		{"invalid tag", everyLay, []byte{0x00}, wire.ErrInvalidTag},
		{"wire type mismatch", everyLay, append(wire.AppendTag(nil, 1, wire.TypeFixed64), 1, 2, 3, 4, 5, 6, 7, 8), ErrWireTypeMismatch},
		{"duplicate child", everyLay, dupChild, ErrDuplicateSubfield},
		{"depth exceeded", deepLay, overDeep.Marshal(nil), ErrDepthExceeded},
		{"truncated packed varint", intArrLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x01, 0x80), ErrMalformed},
		{"all-empty packed records", intArrLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x00), ErrElementCountChange},
		{"invalid utf8", charLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x02, 0xff, 0xfe), wire.ErrInvalidUTF8},
		{"truncated string", charLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x7f, 'x'), ErrMalformed},
		{"group on unknown field", everyLay, wire.AppendTag(nil, 99, wire.TypeStartGroup), wire.ErrGroupEncoded},
	}
	for _, c := range cases {
		di := New(Options{ValidateUTF8: true})
		bump := arena.NewBump(make([]byte, 1<<16))
		_, ierr := di.Deserialize(c.lay, c.data, bump, 0)
		if ierr == nil {
			t.Errorf("%s: interpretive accepted", c.name)
			continue
		}
		if !errors.Is(ierr, c.want) {
			t.Errorf("%s: interpretive err = %v, want %v", c.name, ierr, c.want)
		}
		dp := New(Options{ValidateUTF8: true})
		no, perr := dp.Scan(PlanFor(c.lay), c.data)
		if perr == nil {
			no.Release()
			t.Errorf("%s: planned scan accepted", c.name)
			continue
		}
		if !errors.Is(perr, c.want) {
			t.Errorf("%s: planned err = %v, want %v", c.name, perr, c.want)
		}
	}
}

// TestPlanForCache: repeated lookups return the identical compiled plan and
// allocate nothing, and sub-plans are shared with their layouts' own plans.
func TestPlanForCache(t *testing.T) {
	p1 := PlanFor(everyLay)
	p2 := PlanFor(everyLay)
	if p1 != p2 {
		t.Fatal("PlanFor returned distinct plans for one layout")
	}
	if p1.Layout() != everyLay {
		t.Fatal("Plan.Layout mismatch")
	}
	var childAct *action
	for i := range p1.acts {
		if p1.acts[i].fld.Name == "child" {
			childAct = &p1.acts[i]
		}
	}
	if childAct == nil || childAct.sub == nil {
		t.Fatal("child action missing sub-plan")
	}
	if childAct.sub != PlanFor(childAct.sub.Layout()) {
		t.Fatal("sub-plan not shared with the cache")
	}
	if allocs := testing.AllocsPerRun(100, func() { PlanFor(everyLay) }); allocs != 0 {
		t.Errorf("cached PlanFor allocates %.1f objects/op", allocs)
	}
}

// TestPlannedZeroAllocSteadyState: satellite 4 — the full planned hot path
// (cached plan lookup, scan into owned scratch, fill) must be zero-alloc
// once capacities are warm.
func TestPlannedZeroAllocSteadyState(t *testing.T) {
	for _, c := range planShapes() {
		need, err := measureBase0(c.lay, c.data)
		if err != nil {
			t.Fatal(err)
		}
		bump := arena.NewBump(make([]byte, need))
		d := New(Options{ValidateUTF8: true})
		if _, err := d.DeserializePlanned(PlanFor(c.lay), c.data, bump, 0); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			bump.Reset()
			if _, err := d.DeserializePlanned(PlanFor(c.lay), c.data, bump, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: planned steady state allocates %.1f objects/op; paper requires 0", c.name, allocs)
		}
	}
}

// TestScanFillPooledZeroAlloc: the split Scan/Fill flow the DPU pipeline
// uses (pooled notes handed between stages) must also be allocation-free at
// steady state.
func TestScanFillPooledZeroAlloc(t *testing.T) {
	c := planShapes()[3] // Everything
	need, err := measureBase0(c.lay, c.data)
	if err != nil {
		t.Fatal(err)
	}
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	p := PlanFor(c.lay)
	run := func() {
		bump.Reset()
		no, err := d.Scan(p, c.data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Fill(p, c.data, no, bump, 0); err != nil {
			t.Fatal(err)
		}
		no.Release()
	}
	run() // warm pool and scratch capacities
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("pooled scan/fill allocates %.1f objects/op", allocs)
	}
}

// FuzzPlannedDecode is the satellite-3 differential fuzzer: for arbitrary
// bytes the planned path must accept exactly the inputs the interpretive
// path accepts, and on acceptance produce a byte-identical arena; accepted
// objects must agree with the protomsg reference implementation.
func FuzzPlannedDecode(f *testing.F) {
	m := protomsg.New(everyDesc)
	m.SetString("s", "seed")
	m.SetUint32("u32", 7)
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 1)
	m.SetMessage("child", child)
	m.AppendNum("nums", 5)
	m.AppendString("names", strings.Repeat("n", 40))
	f.Add(m.Marshal(nil))

	ia := protomsg.New(intArrDesc)
	for i := 0; i < 20; i++ {
		ia.AppendNum("values", uint64(i)<<uint(i))
	}
	f.Add(ia.Marshal(nil))

	ca := protomsg.New(charDesc)
	ca.SetString("data", "fuzz seed data: ascii only")
	f.Add(ca.Marshal(nil))

	f.Add([]byte{})
	f.Add([]byte{0x08, 0x96, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x0a, 0x00})

	layouts := []*abi.Layout{smallLay, everyLay, intArrLay, charLay, deepLay}
	plans := make([]*Plan, len(layouts))
	for i, lay := range layouts {
		plans[i] = PlanFor(lay)
	}
	bufI := make([]byte, 1<<20)
	bufP := make([]byte, 1<<20)
	bufD := make([]byte, 1<<20)
	bufS := make([]byte, 2<<20)
	f.Fuzz(func(t *testing.T, data []byte) {
		for i, lay := range layouts {
			var ioff uint64
			var bi *arena.Bump
			need, ierr := MeasureExact(lay, data)
			if ierr == nil {
				if need+GuardBytes > len(bufI) {
					continue // bounded-demand asserted elsewhere
				}
				di := New(Options{ValidateUTF8: true})
				bi = arena.NewBump(bufI[:need+GuardBytes])
				ioff, ierr = di.Deserialize(lay, data, bi, 0)
			}

			dp := New(Options{ValidateUTF8: true})
			no, perr := dp.Scan(plans[i], data)
			var poff uint64
			var bp *arena.Bump
			if perr == nil {
				if no.Need() != need && ierr == nil {
					t.Fatalf("layout %d: Need %d != MeasureExact %d", i, no.Need(), need)
				}
				bp = arena.NewBump(bufP[:no.Need()+GuardBytes])
				poff, perr = dp.Fill(plans[i], data, no, bp, 0)
				no.Release()
			}

			if (ierr == nil) != (perr == nil) {
				t.Fatalf("layout %d: accept/reject divergence: interpretive %v, planned %v", i, ierr, perr)
			}

			// The fused DeserializePlanned entry must make the same
			// accept/reject decision — for simple layouts under
			// SmallFastPathMax this drives the scan-bypass fast path's own
			// validation.
			dd := New(Options{ValidateUTF8: true})
			var bd *arena.Bump
			if ierr == nil {
				bd = arena.NewBump(bufD[:need+GuardBytes])
			} else {
				bd = arena.NewBump(bufD)
			}
			doff, derr := dd.DeserializePlanned(plans[i], data, bd, 0)
			if (ierr == nil) != (derr == nil) {
				t.Fatalf("layout %d: fused accept/reject divergence: interpretive %v, fused %v", i, ierr, derr)
			}
			if ierr != nil {
				continue
			}
			if poff != ioff || !bytes.Equal(bp.Bytes(), bi.Bytes()) {
				t.Fatalf("layout %d: planned arena diverges from interpretive", i)
			}
			if doff != ioff || !bytes.Equal(bd.Bytes(), bi.Bytes()) {
				t.Fatalf("layout %d: fused arena diverges from interpretive", i)
			}

			// protomsg reference: if the one-copy reference decoder accepts
			// the input, the arena object must re-serialize to bytes the
			// reference decodes to an equal message.
			v := abi.MakeView(&abi.Region{Buf: bp.Bytes()}, poff, lay)
			if err := abi.Verify(v); err != nil {
				t.Fatalf("layout %d: accepted object fails Verify: %v", i, err)
			}
			reser, err := Serialize(v, nil)
			if err != nil {
				t.Fatalf("layout %d: accepted object cannot re-serialize: %v", i, err)
			}
			ref := protomsg.New(lay.Msg)
			if ref.Unmarshal(data) == nil {
				ref2 := protomsg.New(lay.Msg)
				if err := ref2.Unmarshal(reser); err != nil {
					t.Fatalf("layout %d: reference rejects re-serialized bytes: %v", i, err)
				}
				if !protomsg.Equal(ref, ref2) {
					t.Fatalf("layout %d: arena object disagrees with protomsg reference", i)
				}
			}

			// Scatter-gather leg: with a low threshold the SG scan must
			// make the same accept decision, and the descriptor-backed
			// object (FillSG + PlaceSegments) must re-serialize to the
			// same bytes as the copy-fill object.
			ds := New(Options{ValidateUTF8: true, SGPayloadMin: 16})
			ns, serr := ds.Scan(plans[i], data)
			if serr != nil {
				t.Fatalf("layout %d: SG scan rejects input the inline scan accepts: %v", i, serr)
			}
			const sgBase = 64
			objArea := alignUp8(ns.Need())
			if sgBase+objArea+ns.SegBytes() > len(bufS) {
				ns.Release()
				continue
			}
			bs := arena.NewBump(bufS[sgBase : sgBase+objArea])
			soff, serr := ds.FillSG(plans[i], data, ns, bs, sgBase, uint64(sgBase+objArea))
			if serr != nil {
				t.Fatalf("layout %d: FillSG fails on scanned input: %v", i, serr)
			}
			refs := ds.PlaceSegments(data, ns, bufS[sgBase+objArea:sgBase+objArea+ns.SegBytes()], nil)
			if len(refs) != ns.SegCount() {
				t.Fatalf("layout %d: placed %d refs, notes say %d", i, len(refs), ns.SegCount())
			}
			ns.Release()
			sv := abi.MakeView(&abi.Region{Buf: bufS}, soff, lay)
			if err := abi.Verify(sv); err != nil {
				t.Fatalf("layout %d: SG object fails Verify: %v", i, err)
			}
			sser, err := Serialize(sv, nil)
			if err != nil {
				t.Fatalf("layout %d: SG object cannot re-serialize: %v", i, err)
			}
			if !bytes.Equal(sser, reser) {
				t.Fatalf("layout %d: SG object re-serializes differently from copy-fill object", i)
			}
		}
	})
}

// TestScanBypassShape: simple layouts under SmallFastPathMax must take the
// scan-bypass fast path — Notes with no replay stream, Fill running the
// fused loop — on the split entry points, and the fused DeserializePlanned
// must agree, staying byte-identical to the interpretive decoder including
// wire-order string spills past SSO capacity and unknown-field skips.
func TestScanBypassShape(t *testing.T) {
	spilly := protomsg.New(charDesc)
	spilly.SetString("data", strings.Repeat("spill-me!", 8))
	unknown := append(smallData(), wire.AppendTag(nil, 99, wire.TypeVarint)...)
	unknown = append(unknown, 0x7f)
	big := protomsg.New(charDesc)
	big.SetString("data", strings.Repeat("x", SmallFastPathMax+1))

	cases := []struct {
		name   string
		lay    *abi.Layout
		data   []byte
		bypass bool
	}{
		{"Small", smallLay, smallData(), true},
		{"CharSpill", charLay, spilly.Marshal(nil), true},
		{"UnknownField", smallLay, unknown, true},
		{"OverThreshold", charLay, big.Marshal(nil), false},
		{"NonSimple", everyLay, smallData()[:0], false},
	}
	for _, c := range cases {
		if got := PlanFor(c.lay).Simple(); got != (c.lay != everyLay) {
			t.Fatalf("%s: Plan.Simple() = %v", c.name, got)
		}
		for _, base := range []uint64{0, 4096} {
			need, err := MeasureExact(c.lay, c.data)
			if err != nil {
				t.Fatalf("%s: MeasureExact: %v", c.name, err)
			}
			guard := 0
			if base == 0 {
				guard = GuardBytes
			}
			di := New(Options{ValidateUTF8: true})
			bi := arena.NewBump(make([]byte, need+guard))
			ioff, err := di.Deserialize(c.lay, c.data, bi, base)
			if err != nil {
				t.Fatalf("%s: Deserialize: %v", c.name, err)
			}

			p := PlanFor(c.lay)
			dp := New(Options{ValidateUTF8: true})
			no, err := dp.Scan(p, c.data)
			if err != nil {
				t.Fatalf("%s: Scan: %v", c.name, err)
			}
			if no.Bypass() != c.bypass {
				t.Fatalf("%s: Bypass() = %v, want %v", c.name, no.Bypass(), c.bypass)
			}
			if no.Need() != need {
				t.Fatalf("%s: Need %d != MeasureExact %d", c.name, no.Need(), need)
			}
			bp := arena.NewBump(make([]byte, need+guard))
			poff, err := dp.Fill(p, c.data, no, bp, base)
			no.Release()
			if err != nil {
				t.Fatalf("%s: Fill: %v", c.name, err)
			}
			if poff != ioff || !bytes.Equal(bp.Bytes(), bi.Bytes()) {
				t.Fatalf("%s base %d: bypass fill diverges from interpretive", c.name, base)
			}

			df := New(Options{ValidateUTF8: true})
			bf := arena.NewBump(make([]byte, need+guard))
			foff, err := df.DeserializePlanned(p, c.data, bf, base)
			if err != nil {
				t.Fatalf("%s: DeserializePlanned: %v", c.name, err)
			}
			if foff != ioff || !bytes.Equal(bf.Bytes(), bi.Bytes()) {
				t.Fatalf("%s base %d: fused decode diverges from interpretive", c.name, base)
			}
		}
	}
}

// TestScanBypassErrorParity: the fast path's validation (both the split
// scanSimple and the fused charge-mode loop) must report the interpretive
// sentinels on defective small inputs.
func TestScanBypassErrorParity(t *testing.T) {
	cases := []struct {
		name string
		lay  *abi.Layout
		data []byte
		want error
	}{
		{"truncated tag", smallLay, []byte{0x80}, ErrMalformed},
		{"invalid tag", smallLay, []byte{0x00}, wire.ErrInvalidTag},
		{"wire type mismatch", smallLay, append(wire.AppendTag(nil, 1, wire.TypeFixed64), 1, 2, 3, 4, 5, 6, 7, 8), ErrWireTypeMismatch},
		{"invalid utf8", charLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x02, 0xff, 0xfe), wire.ErrInvalidUTF8},
		{"truncated string", charLay, append(wire.AppendTag(nil, 1, wire.TypeBytes), 0x7f, 'x'), ErrMalformed},
		{"truncated scalar", smallLay, wire.AppendTag(nil, 1, wire.TypeVarint), ErrMalformed},
	}
	for _, c := range cases {
		p := PlanFor(c.lay)
		d := New(Options{ValidateUTF8: true})
		if no, err := d.Scan(p, c.data); err == nil {
			no.Release()
			t.Errorf("%s: bypass scan accepted", c.name)
		} else if !errors.Is(err, c.want) {
			t.Errorf("%s: bypass scan err = %v, want %v", c.name, err, c.want)
		}
		df := New(Options{ValidateUTF8: true})
		bump := arena.NewBump(make([]byte, 1<<12))
		if _, err := df.DeserializePlanned(p, c.data, bump, 0); err == nil {
			t.Errorf("%s: fused decode accepted", c.name)
		} else if !errors.Is(err, c.want) {
			t.Errorf("%s: fused err = %v, want %v", c.name, err, c.want)
		}
	}
}

// benchInterpSized measures the interpretive datapath unit of work — exact
// sizing followed by decode, the measure→count→fill triple walk both offload
// paths ran before plans. benchPlanned below is its compiled replacement
// (DeserializePlanned sizes and decodes in one scan), so SizedX vs PlannedX
// pairs are the like-for-like decode-throughput comparison.
func benchInterpSized(b *testing.B, lay *abi.Layout, data []byte) {
	b.Helper()
	need, err := MeasureExact(lay, data)
	if err != nil {
		b.Fatal(err)
	}
	bump := arena.NewBump(make([]byte, need+GuardBytes))
	d := New(Options{ValidateUTF8: true})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureExact(lay, data); err != nil {
			b.Fatal(err)
		}
		bump.Reset()
		if _, err := d.Deserialize(lay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPlanned(b *testing.B, lay *abi.Layout, data []byte) {
	b.Helper()
	need, err := MeasureExact(lay, data)
	if err != nil {
		b.Fatal(err)
	}
	bump := arena.NewBump(make([]byte, need+GuardBytes))
	d := New(Options{ValidateUTF8: true})
	p := PlanFor(lay)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.DeserializePlanned(p, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func ints512Data() []byte {
	rng := mt19937.New(mt19937.DefaultSeed)
	m := protomsg.New(intArrDesc)
	for i := 0; i < 512; i++ {
		shift := rng.Uint32n(32)
		m.AppendNum("values", uint64(rng.Uint32()>>shift))
	}
	return m.Marshal(nil)
}

func chars8000Data() []byte {
	m := protomsg.New(charDesc)
	m.SetString("data", strings.Repeat("abcdefgh", 1000))
	return m.Marshal(nil)
}

func smallData() []byte {
	m := protomsg.New(smallDesc)
	m.SetUint32("id", 4242)
	m.SetBool("flag", true)
	m.SetInt32("delta", -17)
	m.SetFloat("ratio", 0.75)
	return m.Marshal(nil)
}

func BenchmarkSizedInts512(b *testing.B)   { benchInterpSized(b, intArrLay, ints512Data()) }
func BenchmarkSizedChars8000(b *testing.B) { benchInterpSized(b, charLay, chars8000Data()) }
func BenchmarkSizedSmall(b *testing.B)     { benchInterpSized(b, smallLay, smallData()) }
func BenchmarkSizedNames200(b *testing.B)  { benchInterpSized(b, everyLay, namesData()) }

func BenchmarkPlannedInts512(b *testing.B)   { benchPlanned(b, intArrLay, ints512Data()) }
func BenchmarkPlannedChars8000(b *testing.B) { benchPlanned(b, charLay, chars8000Data()) }
func BenchmarkPlannedSmall(b *testing.B)     { benchPlanned(b, smallLay, smallData()) }

// namesData is the string-heavy workload: many short repeated strings, the
// shape where interpretive per-field dispatch dominates.
func namesData() []byte {
	m := protomsg.New(everyDesc)
	for i := 0; i < 200; i++ {
		m.AppendString("names", strings.Repeat("s", 3+i%20))
	}
	return m.Marshal(nil)
}

func BenchmarkDeserializeNames200(b *testing.B) {
	data := namesData()
	need, _ := measureBase0(everyLay, data)
	bump := arena.NewBump(make([]byte, need))
	d := New(Options{ValidateUTF8: true})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.Deserialize(everyLay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannedNames200(b *testing.B) {
	benchPlanned(b, everyLay, namesData())
}
