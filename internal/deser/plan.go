// Decode-plan compilation: the schema walk the interpretive deserializer
// performs per message — map lookups through protodesc, per-tag kind
// dispatch, and three separate passes over the wire bytes (measure, count,
// fill) — is hoisted to stack-build time. Each abi.Layout compiles once into
// a Plan, a flat field-number-indexed table of pre-resolved actions, and the
// hot path becomes:
//
//	Scan  — one structure-discovery pass over the wire bytes producing the
//	        exact arena size, per-message repeated-element counts, and a
//	        compact parse-notes record (field boundaries and pre-decoded
//	        varint values in pooled scratch);
//	Fill  — a replay of the notes into the arena with no re-decoding and no
//	        re-validation.
//
// Fill reproduces the interpretive deserializer's allocation sequence
// byte-for-byte: object, array pre-allocations in field-index order, then
// string spills and nested objects in wire order. Scan reports the same
// structural errors Deserialize would (wire-type mismatches, duplicate
// singular messages, truncation, depth), though for inputs with several
// independent defects the *first* error found can differ, because the
// interpretive path notices count-pass errors before fill-pass ones.
package deser

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/wire"
)

// Replay opcodes recorded in parse notes.
const (
	nopEnd        uint8 = iota // end of one message body
	nopScalar                  // singular scalar; val holds the converted slot bits
	nopString                  // singular string/bytes; val references the payload
	nopMessage                 // singular message; a nested body follows
	nopRepElem                 // one unpacked repeated-scalar element; val holds bits
	nopRepVals                 // n pre-decoded repeated-scalar elements from the vals stream
	nopRepCopy                 // packed fixed-width run; val references the payload (bulk copy)
	nopRepString               // one repeated string/bytes element; val references the payload
	nopRepMessage              // one repeated message element; a nested body follows
	nopStringRef               // singular string/bytes carried as an SG payload segment; val references the payload
)

// action is one field's pre-resolved decode recipe: everything the scan and
// fill passes need, with no protodesc or map lookups on the hot path.
type action struct {
	kind     protodesc.Kind
	repeated bool
	scalar   bool   // repeated scalar (fl.ElemSize != 0)
	str      bool   // string or bytes kind
	zig      bool   // sint kinds: packed elements need zigzag decode
	fixed    uint8  // fixed-width wire size (0 for varint kinds)
	offset   uint32 // slot offset in the object
	size     uint32 // singular scalar slot width (1/4/8)
	elem     uint32 // repeated-scalar element width
	index    uint16 // field index (presence bit, duplicate tracking)
	repIdx   uint16 // ordinal among the message's repeated fields
	sub      *Plan  // sub-plan for message kinds
	fld      *protodesc.Field
}

// repSlot is one repeated field in fill pre-allocation (field-index) order.
type repSlot struct {
	act   *action
	elem  int
	align int
}

// Plan is the compiled decode plan for one layout: a dense
// field-number-indexed dispatch table plus the repeated-field allocation
// schedule. Plans are immutable after compilation and safe to share.
type Plan struct {
	lay    *abi.Layout
	acts   []action
	byNum  []int32         // field number -> index+1 into acts (0 = unknown)
	sparse map[int32]int32 // fallback when field numbers exceed maxDenseFieldNum
	rep    []repSlot
	numRep int
	// simple marks a flat layout — no repeated and no message fields — whose
	// messages can take the scan-bypass fast path below SmallFastPathMax:
	// one fused tag→action loop decodes straight into the object with no
	// parse notes materialized.
	simple bool
}

// SmallFastPathMax is the wire-size threshold (bytes) under which messages
// of a simple layout decode through the fused fast path. Past it the
// notes-based pipeline amortizes its bookkeeping and wins on replay.
const SmallFastPathMax = 128

// Layout returns the layout the plan was compiled from.
func (p *Plan) Layout() *abi.Layout { return p.lay }

// maxDenseFieldNum bounds the dense dispatch table so a schema with sparse
// huge field numbers cannot blow up memory; such schemas fall back to a map.
const maxDenseFieldNum = 1 << 12

// planCache maps *abi.Layout -> *Plan. Layouts are built once per ADT table
// and live for the process, so pointer identity is a stable key.
var planCache sync.Map

// PlanFor returns the compiled plan for lay, compiling and caching it (and
// every layout reachable from it) on first use. Safe for concurrent use:
// racing compilations produce independently correct plan graphs and the
// cache keeps one winner per layout. The steady-state lookup allocates
// nothing.
func PlanFor(lay *abi.Layout) *Plan {
	if p, ok := planCache.Load(lay); ok {
		return p.(*Plan)
	}
	local := make(map[*abi.Layout]*Plan)
	compilePlan(lay, local)
	for l, pl := range local {
		planCache.LoadOrStore(l, pl)
	}
	p, _ := planCache.Load(lay)
	return p.(*Plan)
}

// compilePlan compiles lay and everything reachable from it into local.
// local is seeded before recursing so self-referential schemas terminate,
// mirroring abi's computeInto.
func compilePlan(lay *abi.Layout, local map[*abi.Layout]*Plan) *Plan {
	if p, ok := local[lay]; ok {
		return p
	}
	if cached, ok := planCache.Load(lay); ok {
		p := cached.(*Plan)
		local[lay] = p
		return p
	}
	p := &Plan{lay: lay}
	local[lay] = p
	p.acts = make([]action, len(lay.Fields))
	maxNum := int32(0)
	for i := range lay.Fields {
		fl := &lay.Fields[i]
		f := fl.Desc
		if f.Number > maxNum {
			maxNum = f.Number
		}
		a := &p.acts[i]
		*a = action{
			kind:     f.Kind,
			repeated: f.Repeated,
			scalar:   fl.ElemSize != 0,
			str:      f.Kind == protodesc.KindString || f.Kind == protodesc.KindBytes,
			zig:      f.Kind == protodesc.KindSint32 || f.Kind == protodesc.KindSint64,
			fixed:    uint8(f.Kind.FixedSize()),
			offset:   fl.Offset,
			size:     uint32(fl.Size),
			elem:     uint32(fl.ElemSize),
			index:    uint16(f.Index),
			fld:      f,
		}
		if fl.Child != nil {
			a.sub = compilePlan(fl.Child, local)
		}
		if f.Repeated {
			a.repIdx = uint16(p.numRep)
			p.numRep++
			elem := elemSize(fl)
			align := elem
			if align > 8 {
				align = 8
			}
			p.rep = append(p.rep, repSlot{act: a, elem: elem, align: align})
		}
	}
	if maxNum <= maxDenseFieldNum {
		p.byNum = make([]int32, maxNum+1)
		for i := range lay.Fields {
			p.byNum[lay.Fields[i].Desc.Number] = int32(i) + 1
		}
	} else {
		p.sparse = make(map[int32]int32, len(lay.Fields))
		for i := range lay.Fields {
			p.sparse[lay.Fields[i].Desc.Number] = int32(i) + 1
		}
	}
	p.simple = true
	for i := range p.acts {
		if p.acts[i].repeated || p.acts[i].sub != nil {
			p.simple = false
			break
		}
	}
	return p
}

// Simple reports whether the plan's layout qualifies for the small-message
// fast path (no repeated fields, no nested messages).
func (p *Plan) Simple() bool { return p.simple }

// lookup resolves a field number to its action, or nil for unknown fields.
func (p *Plan) lookup(num int32) *action {
	if p.byNum != nil {
		if uint32(num) < uint32(len(p.byNum)) {
			if i := p.byNum[num]; i != 0 {
				return &p.acts[i-1]
			}
		}
		return nil
	}
	if i := p.sparse[num]; i != 0 {
		return &p.acts[i-1]
	}
	return nil
}

// noteOp is one parse-notes record. act is nil only for nopEnd.
type noteOp struct {
	act *action
	val uint64 // payload reference (off<<32|len into the wire data) or slot bits
	n   uint32 // element count (nopRepVals)
	op  uint8
}

// Notes is the compact parse-notes record one Scan produces: the replay
// stream (ops), pre-decoded packed-varint values (vals), and per-message
// repeated-element counts (counts) in pre-order message-entry order. A Notes
// is valid only together with the wire bytes it was scanned from.
type Notes struct {
	ops    []noteOp
	vals   []uint64
	counts []uint32
	need   int
	// Scatter-gather accounting (Options.SGPayloadMin > 0): segBytes is the
	// 8-aligned byte total of the payload-segment area the message needs in
	// addition to need, segCount the number of payload-ref notes. Both stay
	// zero with SG disabled.
	segBytes int
	segCount int
	// bypass marks the scan-bypass shape: the scan validated the message and
	// computed need but recorded no ops; Fill re-runs the fused decode loop
	// instead of replaying notes. Only produced for simple plans under
	// SmallFastPathMax.
	bypass bool
}

func (no *Notes) reset() {
	no.ops = no.ops[:0]
	no.vals = no.vals[:0]
	no.counts = no.counts[:0]
	no.need = 0
	no.segBytes = 0
	no.segCount = 0
	no.bypass = false
}

// SegBytes returns the payload-segment area size (8-aligned payload runs)
// the scatter-gather framing reserves on top of Need. Zero with SG disabled.
func (no *Notes) SegBytes() int { return no.segBytes }

// SegCount returns the number of descriptor-backed payloads the scan found.
func (no *Notes) SegCount() int { return no.segCount }

// Bypass reports whether the notes carry the scan-bypass shape (no replay
// stream; Fill runs the fused fast path).
func (no *Notes) Bypass() bool { return no.bypass }

// Need returns the exact arena bytes Fill will consume, excluding the
// GuardBytes NullRef guard prepended at base 0 — the same convention as
// MeasureExact.
func (no *Notes) Need() int { return no.need }

// notesPool recycles Notes across calls and goroutines (the DPU pipeline
// scans on one worker and fills on another).
var notesPool = sync.Pool{New: func() any { return new(Notes) }}

// Release returns no to the shared pool. Safe on nil; the caller must not
// use no afterwards.
func (no *Notes) Release() {
	if no == nil {
		return
	}
	notesPool.Put(no)
}

// packRef encodes a payload slice of the wire data as off<<32|len.
func packRef(off, ln int) uint64 { return uint64(off)<<32 | uint64(uint32(ln)) }

// payloadOf resolves a packRef against the wire data.
func payloadOf(data []byte, v uint64) []byte {
	off := int(v >> 32)
	return data[off : off+int(v&0xffffffff)]
}

// Scan runs the single structure-discovery pass over data: it validates the
// wire structure, pre-decodes varint values, and returns pooled parse notes
// whose Need reports the exact arena size. The caller must Release the
// notes (Fill does not). On error no notes are retained.
func (d *Deserializer) Scan(p *Plan, data []byte) (*Notes, error) {
	no := notesPool.Get().(*Notes)
	no.reset()
	if p.simple && len(data) <= SmallFastPathMax {
		need, err := d.scanSimple(p, data)
		if err != nil {
			no.Release()
			return nil, err
		}
		no.need = need
		no.bypass = true
		return no, nil
	}
	if err := d.scanInto(p, data, no); err != nil {
		no.Release()
		return nil, err
	}
	return no, nil
}

// scanSimple is the structure-discovery half of the fast path: it validates
// a simple-layout message (same checks, same sentinel errors as scanBody)
// and returns the exact arena need, recording nothing. Decode-side stats are
// charged here, mirroring scanBody, so the split pipeline's accounting is
// unchanged.
func (d *Deserializer) scanSimple(p *Plan, data []byte) (int, error) {
	lay := p.lay
	spill := 0
	pos := 0
	for pos < len(data) {
		var num int32
		var wt wire.Type
		var n int
		if c := data[pos]; c >= 8 && c < 0x80 {
			num, wt, n = int32(c>>3), wire.Type(c&7), 1
		} else {
			var err error
			num, wt, n, err = wire.Tag(data[pos:])
			if err != nil {
				if errors.Is(err, wire.ErrInvalidTag) {
					return 0, err
				}
				return 0, fmt.Errorf("%w: bad tag", ErrMalformed)
			}
		}
		d.Stats.VarintBytes += uint64(n)
		pos += n
		a := p.lookup(num)
		if a == nil {
			skipped, err := wire.SkipValue(data[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
			continue
		}
		d.Stats.Fields++
		if a.str {
			if wt != wire.TypeBytes {
				return 0, wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(data[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(n - len(payload))
			if a.kind == protodesc.KindString && !d.validateUTF8(payload) {
				return 0, wire.ErrInvalidUTF8
			}
			if len(payload) > abi.SSOCapacity {
				spill += len(payload)
			}
			pos += n
			continue
		}
		_, n, err := d.scalar(data[pos:], a.kind, wt)
		if err != nil {
			return 0, wrapScalarErr(lay, a.fld, err)
		}
		pos += n
	}
	d.Stats.ScannedBytes += uint64(len(data))
	return int(lay.Size) + spill, nil
}

func (d *Deserializer) scanInto(p *Plan, data []byte, no *Notes) error {
	if err := d.scanBody(p, data, 0, no, 0); err != nil {
		return err
	}
	d.Stats.ScannedBytes += uint64(len(data))
	var s bumpSizer
	opi, cti := 0, 0
	sizeNotes(p, no, &opi, &cti, &s)
	no.need = s.off
	return nil
}

// scanBody scans one message body. bodyOff is the body's offset within the
// top-level wire data, so payload references in the notes are absolute.
func (d *Deserializer) scanBody(p *Plan, body []byte, bodyOff int, no *Notes, depth int) error {
	if depth >= d.opts.MaxDepth {
		return ErrDepthExceeded
	}
	lay := p.lay
	cbase := len(no.counts)
	for i := 0; i < p.numRep; i++ {
		no.counts = append(no.counts, 0)
	}
	fr := d.frame(depth)
	fr.prepare(len(lay.Fields))
	pos := 0
	for pos < len(body) {
		// One-byte tag fast path, by hand: the wire.Tag wrapper is past the
		// inliner budget, and a call per field tag is measurable here.
		var num int32
		var wt wire.Type
		var n int
		if c := body[pos]; c >= 8 && c < 0x80 {
			num, wt, n = int32(c>>3), wire.Type(c&7), 1
		} else {
			var err error
			num, wt, n, err = wire.Tag(body[pos:])
			if err != nil {
				if errors.Is(err, wire.ErrInvalidTag) {
					return err
				}
				return fmt.Errorf("%w: bad tag", ErrMalformed)
			}
		}
		d.Stats.VarintBytes += uint64(n)
		pos += n
		a := p.lookup(num)
		if a == nil {
			skipped, err := wire.SkipValue(body[pos:], wt)
			if err != nil {
				return err
			}
			pos += skipped
			continue
		}
		d.Stats.Fields++
		switch {
		case a.repeated && a.scalar:
			consumed, err := d.scanRepScalar(a, body[pos:], bodyOff+pos, wt, no, cbase, fr)
			if err != nil {
				return err
			}
			pos += consumed
		case a.repeated && a.str:
			if wt != wire.TypeBytes {
				return wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string element", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(n - len(payload))
			if a.kind == protodesc.KindString && !d.validateUTF8(payload) {
				return wire.ErrInvalidUTF8
			}
			no.counts[cbase+int(a.repIdx)]++
			no.ops = append(no.ops, noteOp{act: a, op: nopRepString,
				val: packRef(bodyOff+pos+n-len(payload), len(payload))})
			pos += n
		case a.repeated: // repeated message
			if wt != wire.TypeBytes {
				return wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated message element", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(n - len(payload))
			no.counts[cbase+int(a.repIdx)]++
			no.ops = append(no.ops, noteOp{act: a, op: nopRepMessage})
			if err := d.scanBody(a.sub, payload, bodyOff+pos+n-len(payload), no, depth+1); err != nil {
				return err
			}
			pos += n
		case a.sub != nil: // singular message
			if wt != wire.TypeBytes {
				return wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated nested message", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(n - len(payload))
			if fr.seen[a.index] {
				return fmt.Errorf("%w: %s.%s", ErrDuplicateSubfield, lay.Msg.Name, a.fld.Name)
			}
			fr.seen[a.index] = true
			no.ops = append(no.ops, noteOp{act: a, op: nopMessage})
			if err := d.scanBody(a.sub, payload, bodyOff+pos+n-len(payload), no, depth+1); err != nil {
				return err
			}
			pos += n
		case a.str: // singular string/bytes
			if wt != wire.TypeBytes {
				return wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(body[pos:])
			if n == 0 {
				return fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			d.Stats.VarintBytes += uint64(n - len(payload))
			if a.kind == protodesc.KindString && !d.validateUTF8(payload) {
				return wire.ErrInvalidUTF8
			}
			if d.opts.SGPayloadMin > 0 && len(payload) >= d.opts.SGPayloadMin {
				// Scatter-gather: the payload rides as a dedicated segment
				// and the fill writes an offset reference — no spill alloc
				// (sizeNotes skips this op) and no copy in fillBody.
				no.ops = append(no.ops, noteOp{act: a, op: nopStringRef,
					val: packRef(bodyOff+pos+n-len(payload), len(payload))})
				no.segBytes += alignUp8(len(payload))
				no.segCount++
			} else {
				no.ops = append(no.ops, noteOp{act: a, op: nopString,
					val: packRef(bodyOff+pos+n-len(payload), len(payload))})
			}
			pos += n
		default: // singular scalar
			bits, n, err := d.scalar(body[pos:], a.kind, wt)
			if err != nil {
				return wrapScalarErr(lay, a.fld, err)
			}
			no.ops = append(no.ops, noteOp{act: a, op: nopScalar, val: bits})
			pos += n
		}
	}
	// The interpretive fill rejects a repeated scalar field whose records
	// were all empty packed runs (final count 0 with the field present);
	// the single pass detects that at end of body.
	for _, rs := range p.rep {
		a := rs.act
		if a.scalar && fr.cursors[a.repIdx] > 0 && no.counts[cbase+int(a.repIdx)] == 0 {
			return ErrElementCountChange
		}
	}
	no.ops = append(no.ops, noteOp{op: nopEnd})
	return nil
}

// scanRepScalar scans one wire value (packed record or single element) of a
// repeated scalar field.
func (d *Deserializer) scanRepScalar(a *action, rest []byte, absPos int, wt wire.Type, no *Notes, cbase int, fr *frame) (int, error) {
	fr.cursors[a.repIdx]++ // field present: all-empty-packed detection
	ci := cbase + int(a.repIdx)
	if wt == wire.TypeBytes {
		payload, n := wire.Bytes(rest)
		if n == 0 {
			return 0, fmt.Errorf("%w: truncated packed field", ErrMalformed)
		}
		d.Stats.VarintBytes += uint64(n - len(payload))
		if fs := int(a.fixed); fs != 0 {
			if len(payload)%fs != 0 {
				return 0, fmt.Errorf("%w: packed fixed payload not a multiple of %d", ErrMalformed, fs)
			}
			d.Stats.FixedBytes += uint64(len(payload))
			cnt := uint32(len(payload) / fs)
			no.counts[ci] += cnt
			if len(payload) == 0 {
				return n, nil
			}
			if fs == int(a.elem) {
				// Wire and arena widths agree (every fixed kind): one bulk
				// copy record replays the whole run.
				no.ops = append(no.ops, noteOp{act: a, op: nopRepCopy,
					val: packRef(absPos+n-len(payload), len(payload))})
				return n, nil
			}
			// Width-converting fallback: pre-decode each element.
			for pos := 0; pos < len(payload); pos += fs {
				var bits uint64
				if fs == 4 {
					v, _ := wire.Fixed32(payload[pos:])
					bits = uint64(v)
				} else {
					v, _ := wire.Fixed64(payload[pos:])
					bits = v
				}
				no.vals = append(no.vals, bits)
			}
			no.ops = append(no.ops, noteOp{act: a, op: nopRepVals, n: cnt})
			return n, nil
		}
		// Packed varints: decode and convert once; the fill replays stores.
		// Decoding dominates the varint-heavy workloads, so the one-byte
		// case is handled without a call and only zigzag kinds convert
		// (narrowing and bool normalization fall out of the element-width
		// stores in fillBody). Every payload byte belongs to exactly one
		// varint, so the stats charge is the payload length.
		// vals stays in a local so append keeps the slice header in
		// registers instead of writing it back through no every element.
		vals := no.vals
		vstart := len(vals)
		zig := a.zig
		pos := 0
		for pos < len(payload) {
			var v uint64
			if c := payload[pos]; c < 0x80 {
				v = uint64(c)
				pos++
			} else if pos+1 < len(payload) && payload[pos+1] < 0x80 {
				v = uint64(c&0x7f) | uint64(payload[pos+1])<<7
				pos += 2
			} else {
				var vn int
				v, vn = wire.Uvarint(payload[pos:])
				if vn <= 0 {
					return 0, fmt.Errorf("%w: bad packed varint", ErrMalformed)
				}
				pos += vn
			}
			if zig {
				v = uint64(wire.DecodeZigZag(v))
			}
			vals = append(vals, v)
		}
		no.vals = vals
		d.Stats.VarintBytes += uint64(len(payload))
		if cnt := uint32(len(vals) - vstart); cnt > 0 {
			no.counts[ci] += cnt
			no.ops = append(no.ops, noteOp{act: a, op: nopRepVals, n: cnt})
		}
		return n, nil
	}
	// Unpacked single element.
	bits, n, err := d.scalar(rest, a.kind, wt)
	if err != nil {
		return 0, err
	}
	no.counts[ci]++
	no.ops = append(no.ops, noteOp{act: a, op: nopRepElem, val: bits})
	return n, nil
}

// sizeNotes replays the allocation sequence of one message body through the
// bump-sizer: object, arrays, then wire-order spills and children — the only
// note records that allocate. It is the exact-sizing pass of the compiled
// path, touching a handful of records instead of re-walking the wire bytes.
func sizeNotes(p *Plan, no *Notes, opi, cti *int, s *bumpSizer) {
	s.alloc(int(p.lay.Size), abi.ObjectAlign)
	cbase := *cti
	*cti += p.numRep
	for _, rs := range p.rep {
		c := no.counts[cbase+int(rs.act.repIdx)]
		if c == 0 {
			continue
		}
		s.alloc(int(c)*rs.elem, rs.align)
	}
	for {
		op := &no.ops[*opi]
		*opi++
		switch op.op {
		case nopEnd:
			return
		case nopString, nopRepString:
			if ln := int(op.val & 0xffffffff); ln > abi.SSOCapacity {
				s.alloc(ln, 1)
			}
		case nopMessage, nopRepMessage:
			sizeNotes(op.act.sub, no, opi, cti, s)
		}
	}
}

// Fill replays parse notes into a fresh object graph allocated from bump,
// re-decoding and re-validating nothing. data must be the wire bytes no was
// scanned from. The allocation sequence is byte-identical to Deserialize's,
// including the base-0 NullRef guard.
func (d *Deserializer) Fill(p *Plan, data []byte, no *Notes, bump *arena.Bump, base uint64) (uint64, error) {
	if no.bypass {
		// Scan-bypass shape: no notes to replay, run the fused decode. The
		// scan already validated and charged decode stats, so this pass
		// charges only replay-side work.
		return d.fillSimple(p, data, bump, base, false)
	}
	if base == 0 && bump.Used() == 0 {
		// Reserve offset 0 so NullRef stays unambiguous.
		if _, _, err := bump.Alloc(GuardBytes, 8); err != nil {
			return 0, err
		}
	}
	before := bump.Used()
	opi, cti, vi := 0, 0, 0
	off, err := d.fillBody(p, data, no, &opi, &cti, &vi, bump, base, 0)
	if err != nil {
		return 0, err
	}
	d.Stats.ArenaBytes += uint64(bump.Used() - before)
	return off, nil
}

// fillSimple is the fused small-message fast path: one tag→action loop that
// decodes a simple-layout message straight into a fresh object, with no
// parse notes in between. The allocation sequence (object, then wire-order
// string spills) and every validation decision are byte-identical to the
// interpretive path. With charge set (the one-call DeserializePlanned path)
// it validates and charges decode stats; without it (Fill after a
// validating scanSimple) it only replays, charging replay-side stats.
func (d *Deserializer) fillSimple(p *Plan, data []byte, bump *arena.Bump, base uint64, charge bool) (uint64, error) {
	if base == 0 && bump.Used() == 0 {
		// Reserve offset 0 so NullRef stays unambiguous.
		if _, _, err := bump.Alloc(GuardBytes, 8); err != nil {
			return 0, err
		}
	}
	before := bump.Used()
	lay := p.lay
	obj, bumpOff, err := bump.Alloc(int(lay.Size), abi.ObjectAlign)
	if err != nil {
		return 0, err
	}
	copy(obj, lay.Default) // vptr/classID comes along, as in Sec. V-B
	objOff := base + uint64(bumpOff)
	d.Stats.Messages++
	pos := 0
	for pos < len(data) {
		var num int32
		var wt wire.Type
		var n int
		if c := data[pos]; c >= 8 && c < 0x80 {
			num, wt, n = int32(c>>3), wire.Type(c&7), 1
		} else {
			var err error
			num, wt, n, err = wire.Tag(data[pos:])
			if err != nil {
				if errors.Is(err, wire.ErrInvalidTag) {
					return 0, err
				}
				return 0, fmt.Errorf("%w: bad tag", ErrMalformed)
			}
		}
		if charge {
			d.Stats.VarintBytes += uint64(n)
		}
		pos += n
		a := p.lookup(num)
		if a == nil {
			skipped, err := wire.SkipValue(data[pos:], wt)
			if err != nil {
				return 0, err
			}
			pos += skipped
			continue
		}
		if charge {
			d.Stats.Fields++
		}
		if a.str {
			if wt != wire.TypeBytes {
				return 0, wireErr(lay, a.fld, wt)
			}
			payload, n := wire.Bytes(data[pos:])
			if n == 0 {
				return 0, fmt.Errorf("%w: truncated string", ErrMalformed)
			}
			if charge {
				d.Stats.VarintBytes += uint64(n - len(payload))
				if a.kind == protodesc.KindString && !d.validateUTF8(payload) {
					return 0, wire.ErrInvalidUTF8
				}
			}
			rec := obj[a.offset : a.offset+abi.StringRecordSize]
			if err := d.replayString(rec, objOff+uint64(a.offset), payload, bump, base); err != nil {
				return 0, err
			}
			setPresence(obj, lay, int(a.index))
			pos += n
			continue
		}
		var bits uint64
		if charge {
			bits, n, err = d.scalar(data[pos:], a.kind, wt)
		} else {
			bits, n, err = decodeScalar(data[pos:], a.kind, wt)
		}
		if err != nil {
			return 0, wrapScalarErr(lay, a.fld, err)
		}
		writeSlot(obj[a.offset:a.offset+a.size], a.size, bits)
		if !charge {
			d.Stats.ReplayedBytes += uint64(a.size)
		}
		setPresence(obj, lay, int(a.index))
		pos += n
	}
	d.Stats.ArenaBytes += uint64(bump.Used() - before)
	if charge {
		d.Stats.ScannedBytes += uint64(len(data))
	}
	return objOff, nil
}

func (d *Deserializer) fillBody(p *Plan, data []byte, no *Notes, opi, cti, vi *int, bump *arena.Bump, base uint64, depth int) (uint64, error) {
	lay := p.lay
	obj, bumpOff, err := bump.Alloc(int(lay.Size), abi.ObjectAlign)
	if err != nil {
		return 0, err
	}
	copy(obj, lay.Default) // vptr/classID comes along, as in Sec. V-B
	objOff := base + uint64(bumpOff)
	d.Stats.Messages++

	cbase := *cti
	*cti += p.numRep
	fr := d.frame(depth)
	fr.prepare(p.numRep)
	for _, rs := range p.rep {
		a := rs.act
		c := no.counts[cbase+int(a.repIdx)]
		if c == 0 {
			continue
		}
		_, arrOff, err := bump.Alloc(int(c)*rs.elem, rs.align)
		if err != nil {
			return 0, err
		}
		fr.refs[a.repIdx] = base + uint64(arrOff)
		hdr := obj[a.offset : a.offset+abi.RepeatedHdrSize]
		binary.LittleEndian.PutUint64(hdr[0:8], fr.refs[a.repIdx])
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(c))
		setPresence(obj, lay, int(a.index))
	}

	for {
		op := &no.ops[*opi]
		*opi++
		a := op.act
		switch op.op {
		case nopEnd:
			return objOff, nil
		case nopScalar:
			writeSlot(obj[a.offset:a.offset+a.size], a.size, op.val)
			d.Stats.ReplayedBytes += uint64(a.size)
			setPresence(obj, lay, int(a.index))
		case nopString:
			rec := obj[a.offset : a.offset+abi.StringRecordSize]
			if err := d.replayString(rec, objOff+uint64(a.offset), payloadOf(data, op.val), bump, base); err != nil {
				return 0, err
			}
			setPresence(obj, lay, int(a.index))
		case nopStringRef:
			// Scatter-gather payload: write the offset form pointing at the
			// segment PlaceSegments put (or will put) at the cursor — zero
			// bytes copied here; the single placement memcpy is charged as
			// RefBytes in PlaceSegments.
			ln := int(op.val & 0xffffffff)
			rec := obj[a.offset : a.offset+abi.StringRecordSize]
			abi.PutStringRef(rec, d.segCur, ln)
			d.segCur += uint64(alignUp8(ln))
			setPresence(obj, lay, int(a.index))
		case nopMessage:
			childOff, err := d.fillBody(a.sub, data, no, opi, cti, vi, bump, base, depth+1)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(obj[a.offset:a.offset+8], childOff)
			setPresence(obj, lay, int(a.index))
		case nopRepElem:
			i := fr.cursors[a.repIdx]
			fr.cursors[a.repIdx]++
			el, err := sliceAt(bump, base, fr.refs[a.repIdx]+uint64(i)*uint64(a.elem), int(a.elem))
			if err != nil {
				return 0, err
			}
			writeSlot(el, a.elem, op.val)
			d.Stats.ReplayedBytes += uint64(a.elem)
		case nopRepVals:
			vals := no.vals[*vi : *vi+int(op.n)]
			*vi += int(op.n)
			i := fr.cursors[a.repIdx]
			fr.cursors[a.repIdx] += op.n
			arr, err := sliceAt(bump, base, fr.refs[a.repIdx]+uint64(i)*uint64(a.elem), int(op.n)*int(a.elem))
			if err != nil {
				return 0, err
			}
			switch a.elem {
			case 1:
				for j, v := range vals {
					if v != 0 {
						arr[j] = 1
					} else {
						arr[j] = 0
					}
				}
			case 4:
				for j, v := range vals {
					binary.LittleEndian.PutUint32(arr[j*4:], uint32(v))
				}
			default:
				for j, v := range vals {
					binary.LittleEndian.PutUint64(arr[j*8:], v)
				}
			}
			d.Stats.ReplayedBytes += uint64(int(op.n) * int(a.elem))
		case nopRepCopy:
			payload := payloadOf(data, op.val)
			i := fr.cursors[a.repIdx]
			fr.cursors[a.repIdx] += uint32(len(payload)) / a.elem
			arr, err := sliceAt(bump, base, fr.refs[a.repIdx]+uint64(i)*uint64(a.elem), len(payload))
			if err != nil {
				return 0, err
			}
			copy(arr, payload)
			d.Stats.CopyBytes += uint64(len(payload))
		case nopRepString:
			i := fr.cursors[a.repIdx]
			fr.cursors[a.repIdx]++
			recOff := fr.refs[a.repIdx] + uint64(i)*abi.StringRecordSize
			rec, err := sliceAt(bump, base, recOff, abi.StringRecordSize)
			if err != nil {
				return 0, err
			}
			if err := d.replayString(rec, recOff, payloadOf(data, op.val), bump, base); err != nil {
				return 0, err
			}
		case nopRepMessage:
			childOff, err := d.fillBody(a.sub, data, no, opi, cti, vi, bump, base, depth+1)
			if err != nil {
				return 0, err
			}
			i := fr.cursors[a.repIdx]
			fr.cursors[a.repIdx]++
			refSlot, err := sliceAt(bump, base, fr.refs[a.repIdx]+uint64(i)*abi.RefSize, abi.RefSize)
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(refSlot, childOff)
		}
	}
}

// writeSlot stores converted scalar bits into a 1/4/8-byte slot.
func writeSlot(slot []byte, size uint32, bits uint64) {
	switch size {
	case 1:
		if bits != 0 {
			slot[0] = 1
		} else {
			slot[0] = 0
		}
	case 4:
		binary.LittleEndian.PutUint32(slot, uint32(bits))
	default:
		binary.LittleEndian.PutUint64(slot, bits)
	}
}

// replayString is putString without re-validation: the scan already ran
// UTF-8 checks, so the replay only copies.
func (d *Deserializer) replayString(rec []byte, recOff uint64, payload []byte, bump *arena.Bump, base uint64) error {
	d.Stats.CopyBytes += uint64(len(payload))
	if len(payload) <= abi.SSOCapacity {
		abi.PutStringInline(rec, recOff, payload)
		return nil
	}
	dst, dstOff, err := bump.Alloc(len(payload), 1)
	if err != nil {
		return err
	}
	copy(dst, payload)
	abi.PutStringRef(rec, base+uint64(dstOff), len(payload))
	return nil
}

// alignUp8 rounds n up to a multiple of 8, the payload-segment packing
// granularity (matching rpcrdma's payload alignment).
func alignUp8(n int) int { return (n + 7) &^ 7 }

// FillSG is Fill for a scatter-gather framed message: every payload-ref note
// writes the SSO offset form pointing into the payload-segment area that
// starts at region offset segBase, advancing an internal cursor in note
// order — the same order PlaceSegments packs the segments — so the two walks
// agree without communicating. The caller lays the slot out as
// [SG table][object area][segments] and passes base = the object area's
// region offset, segBase = the segment area's.
func (d *Deserializer) FillSG(p *Plan, data []byte, no *Notes, bump *arena.Bump, base, segBase uint64) (uint64, error) {
	d.segCur = segBase
	return d.Fill(p, data, no, bump, base)
}

// SegRef describes one placed payload segment: the protobuf field number it
// backs, its offset within the segment area, and its exact byte length.
type SegRef struct {
	FieldNum uint32
	Off      uint32
	Len      uint32
}

// PlaceSegments copies every payload-ref payload of no into segDst, packed
// back to back at 8-byte alignment in note order, and appends one SegRef per
// segment to refs (pass nil to allocate). This is the single memcpy an SG
// payload ever gets — it lands in the registered region and is referenced by
// offset from then on — so the bytes are charged to Stats.RefBytes, not
// CopyBytes. segDst must be at least no.SegBytes() long; alignment padding
// is zeroed so reserved-slot garbage never rides the wire.
func (d *Deserializer) PlaceSegments(data []byte, no *Notes, segDst []byte, refs []SegRef) []SegRef {
	if no.segCount == 0 {
		return refs
	}
	cur := 0
	for i := range no.ops {
		op := &no.ops[i]
		if op.op != nopStringRef {
			continue
		}
		payload := payloadOf(data, op.val)
		end := cur + len(payload)
		copy(segDst[cur:end], payload)
		for pad := end; pad < cur+alignUp8(len(payload)); pad++ {
			segDst[pad] = 0
		}
		refs = append(refs, SegRef{
			FieldNum: uint32(op.act.fld.Number),
			Off:      uint32(cur),
			Len:      uint32(len(payload)),
		})
		d.Stats.RefBytes += uint64(len(payload))
		cur += alignUp8(len(payload))
	}
	return refs
}

// DeserializePlanned is Deserialize through the compiled plan: one Scan
// (structure discovery) plus one Fill (replay), using a deserializer-owned
// notes scratch so the steady state allocates nothing.
func (d *Deserializer) DeserializePlanned(p *Plan, data []byte, bump *arena.Bump, base uint64) (uint64, error) {
	if p.simple && len(data) <= SmallFastPathMax {
		return d.fillSimple(p, data, bump, base, true)
	}
	if d.notes == nil {
		d.notes = new(Notes)
	}
	no := d.notes
	no.reset()
	if err := d.scanInto(p, data, no); err != nil {
		return 0, err
	}
	return d.Fill(p, data, no, bump, base)
}
