package deser

import (
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/protomsg"
)

// TestMutationRobustness flips, truncates, and splices bytes of valid wire
// messages and feeds the result to MeasureExact and Deserialize. The DPU
// terminates untrusted client connections, so arbitrary bytes must never
// panic, never overrun the arena, and either fail cleanly or produce an
// object that can be read and re-serialized without fault.
func TestMutationRobustness(t *testing.T) {
	rng := mt19937.New(20240706)

	// A corpus of valid encodings across all message shapes.
	var corpus [][]byte
	small := protomsg.New(smallDesc)
	small.SetUint32("id", 99)
	small.SetBool("flag", true)
	small.SetFloat("ratio", 1.25)
	corpus = append(corpus, small.Marshal(nil))

	every := protomsg.New(everyDesc)
	every.SetString("s", "mutate me")
	every.SetInt64("i64", -12345)
	child := protomsg.New(smallDesc)
	child.SetUint32("id", 5)
	every.SetMessage("child", child)
	for i := 0; i < 30; i++ {
		every.AppendNum("nums", uint64(i))
	}
	every.AppendString("names", "abcdefghijklmnopqrstuvwxyz")
	kid := protomsg.New(smallDesc)
	kid.SetUint32("id", 7)
	every.AppendMessage("kids", kid)
	corpus = append(corpus, every.Marshal(nil))

	ints := protomsg.New(intArrDesc)
	for i := 0; i < 64; i++ {
		ints.AppendNum("values", uint64(i)<<uint(i%20))
	}
	corpus = append(corpus, ints.Marshal(nil))

	layouts := []*abi.Layout{smallLay, everyLay, intArrLay}

	mutate := func(src []byte) []byte {
		out := append([]byte(nil), src...)
		switch rng.Uint32n(5) {
		case 0: // single bit flip
			if len(out) > 0 {
				i := int(rng.Uint32n(uint32(len(out))))
				out[i] ^= 1 << rng.Uint32n(8)
			}
		case 1: // truncate
			if len(out) > 1 {
				out = out[:rng.Uint32n(uint32(len(out)))]
			}
		case 2: // byte overwrite run
			if len(out) > 0 {
				start := int(rng.Uint32n(uint32(len(out))))
				for i := start; i < len(out) && i < start+8; i++ {
					out[i] = byte(rng.Uint32())
				}
			}
		case 3: // splice a chunk of another corpus entry
			other := corpus[rng.Uint32n(uint32(len(corpus)))]
			if len(other) > 0 && len(out) > 0 {
				i := int(rng.Uint32n(uint32(len(out))))
				out = append(out[:i:i], other[int(rng.Uint32n(uint32(len(other)))):]...)
			}
		case 4: // prepend garbage varint tags
			out = append([]byte{byte(rng.Uint32()), byte(rng.Uint32())}, out...)
		}
		return out
	}

	buf := make([]byte, 1<<20)
	for trial := 0; trial < 5000; trial++ {
		src := corpus[rng.Uint32n(uint32(len(corpus)))]
		lay := layouts[rng.Uint32n(uint32(len(layouts)))]
		data := mutate(src)

		need, err := measureBase0(lay, data)
		if err != nil {
			continue // rejected at sizing: correct behaviour for garbage
		}
		if need > len(buf) {
			// Implausibly large demand from garbage must still be bounded
			// by the input (objects + arrays derive from wire content).
			t.Fatalf("trial %d: MeasureExact demanded %d bytes for %d input bytes",
				trial, need, len(data))
		}
		bump := arena.NewBump(buf[:need])
		d := New(Options{ValidateUTF8: true})
		off, err := d.Deserialize(lay, data, bump, 0)
		if err != nil {
			continue // rejected during decode: also fine
		}
		// Accepted: the object must be fully traversable, structurally
		// verifiable, and serializable.
		v := abi.MakeView(&abi.Region{Buf: bump.Bytes()}, off, lay)
		if !v.Valid() {
			t.Fatalf("trial %d: accepted object fails validation", trial)
		}
		if err := abi.Verify(v); err != nil {
			t.Fatalf("trial %d: accepted object fails Verify: %v", trial, err)
		}
		if _, err := Serialize(v, nil); err != nil {
			t.Fatalf("trial %d: accepted object cannot re-serialize: %v", trial, err)
		}
	}
}

// TestMeasureExactDemandBounded: the sizer's demand must be linear in the input
// (objects and arrays all derive from wire bytes), so a small message can
// never request an enormous arena.
func TestMeasureExactDemandBounded(t *testing.T) {
	rng := mt19937.New(7)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Uint32n(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		for _, lay := range []*abi.Layout{smallLay, everyLay, intArrLay, deepLay} {
			need, err := measureBase0(lay, data)
			if err != nil {
				continue
			}
			// Worst case per wire byte: a one-byte nested message field can
			// cost an object (~max layout size + padding). Bound generously.
			bound := (len(data) + 2) * (int(lay.Size) + 64)
			if need > bound {
				t.Fatalf("trial %d: %d input bytes demand %d arena bytes", trial, len(data), need)
			}
		}
	}
}
