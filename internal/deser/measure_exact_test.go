package deser

import (
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/workload"
)

// TestMeasureExactMatchesDeserialize is the pipeline's sizing pin:
// MeasureExact must predict, to the byte, the arena consumption of
// Deserialize for every workload class — the reserved slot stride is fixed
// before the build runs, so over- and under-estimates both corrupt the
// reserve → parallel build → commit layout.
func TestMeasureExactMatchesDeserialize(t *testing.T) {
	env := workload.NewEnv()
	rng := mt19937.New(99)
	d := New(Options{ValidateUTF8: true, ScalarUTF8: true})

	verify := func(name string, data []byte, lay *abi.Layout) {
		t.Helper()
		need, err := MeasureExact(lay, data)
		if err != nil {
			t.Fatalf("%s: MeasureExact: %v", name, err)
		}
		// Deserializing into a buffer of exactly the predicted size must
		// succeed and consume it fully; one byte less must not fit.
		b := arena.NewBump(make([]byte, need))
		if _, err := d.Deserialize(lay, data, b, 1024); err != nil {
			t.Fatalf("%s: deserialize into exact buffer (%d bytes): %v", name, need, err)
		}
		if b.Used() != need {
			t.Fatalf("%s: MeasureExact %d != used %d", name, need, b.Used())
		}
		tight := arena.NewBump(make([]byte, need-1))
		if _, err := d.Deserialize(lay, data, tight, 1024); err == nil {
			t.Fatalf("%s: deserialize into %d bytes unexpectedly fit", name, need-1)
		}
	}
	for i := 0; i < 200; i++ {
		verify("small", env.GenSmall(rng).Marshal(nil), env.SmallLay)
		verify("ints", env.GenInts(rng, 1+i%97).Marshal(nil), env.IntsLay)
		verify("chars", env.GenChars(rng, i*7%2000).Marshal(nil), env.CharsLay)
	}
}

// TestMeasureExactStructuralErrors: MeasureExact must reject exactly the
// structurally malformed inputs Deserialize rejects, so the pipeline's
// measure stage filters them before a slot is ever reserved.
func TestMeasureExactStructuralErrors(t *testing.T) {
	env := workload.NewEnv()
	for _, c := range []struct {
		name string
		lay  *abi.Layout
		data []byte
	}{
		{"bad tag", env.SmallLay, []byte{0xff}},
		{"truncated string", env.CharsLay, []byte{0x0a, 0x20, 'x'}},
		{"truncated packed", env.IntsLay, []byte{0x0a, 0x10, 0x01}},
		{"packed varint cut", env.IntsLay, []byte{0x0a, 0x01, 0x80}},
	} {
		if _, err := MeasureExact(c.lay, c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
