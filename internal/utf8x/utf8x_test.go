package utf8x

import (
	"bytes"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

var validCases = []string{
	"",
	"hello",
	"héllo wörld",
	"日本語",
	"\x00\x7f",
	"\u0080\u07ff\u0800\ud7ff\ue000\ufffd",
	"\U00010000\U0010ffff",
	"mixed ascii 和 中文 and more ascii tail..............",
}

var invalidCases = [][]byte{
	{0x80},                   // bare continuation
	{0xc0, 0xaf},             // overlong '/'
	{0xc1, 0x81},             // overlong
	{0xc2},                   // truncated 2-byte
	{0xe0, 0x80, 0x80},       // overlong 3-byte
	{0xe0, 0x9f, 0xbf},       // overlong 3-byte boundary
	{0xed, 0xa0, 0x80},       // surrogate U+D800
	{0xed, 0xbf, 0xbf},       // surrogate U+DFFF
	{0xe1, 0x80},             // truncated 3-byte
	{0xf0, 0x80, 0x80, 0x80}, // overlong 4-byte
	{0xf0, 0x8f, 0xbf, 0xbf}, // overlong 4-byte boundary
	{0xf4, 0x90, 0x80, 0x80}, // above U+10FFFF
	{0xf5, 0x80, 0x80, 0x80}, // invalid lead
	{0xf8, 0x88, 0x80, 0x80, 0x80},
	{0xff},
	{0xc2, 0x20},       // bad continuation
	{0xe1, 0x80, 0x20}, // bad continuation
	{0xf1, 0x80, 0x80, 0x20},
	append(bytes.Repeat([]byte("aaaaaaaa"), 4), 0xed, 0xa0, 0x80), // bad tail after ascii words
}

func TestValidAgainstKnownCases(t *testing.T) {
	for _, s := range validCases {
		if !Valid([]byte(s)) {
			t.Errorf("Valid(%q) = false", s)
		}
		if !ValidScalar([]byte(s)) {
			t.Errorf("ValidScalar(%q) = false", s)
		}
		if !ValidString(s) {
			t.Errorf("ValidString(%q) = false", s)
		}
	}
	for _, b := range invalidCases {
		if Valid(b) {
			t.Errorf("Valid(%x) = true", b)
		}
		if ValidScalar(b) {
			t.Errorf("ValidScalar(%x) = true", b)
		}
		if ValidString(string(b)) {
			t.Errorf("ValidString(%x) = true", b)
		}
	}
}

func TestValidMatchesStdlibQuick(t *testing.T) {
	f := func(b []byte) bool {
		want := utf8.Valid(b)
		return Valid(b) == want && ValidScalar(b) == want && ValidString(string(b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestValidExhaustiveTwoBytes(t *testing.T) {
	// Every 2-byte combination cross-checked with the stdlib.
	b := make([]byte, 2)
	for i := 0; i < 256; i++ {
		for j := 0; j < 256; j++ {
			b[0], b[1] = byte(i), byte(j)
			want := utf8.Valid(b)
			if Valid(b) != want {
				t.Fatalf("Valid(%x) != %v", b, want)
			}
			if ValidScalar(b) != want {
				t.Fatalf("ValidScalar(%x) != %v", b, want)
			}
		}
	}
}

func TestAsciiFastPathBoundary(t *testing.T) {
	// Multi-byte sequence straddling the 8-byte word boundary.
	s := append([]byte("1234567"), []byte("é tail")...)
	if !Valid(s) {
		t.Error("straddling sequence rejected")
	}
	// Exactly 8 ascii bytes then invalid byte.
	s = append([]byte("12345678"), 0xff)
	if Valid(s) {
		t.Error("invalid byte after full word accepted")
	}
}

func BenchmarkValidASCII8K(b *testing.B) {
	data := bytes.Repeat([]byte("a"), 8000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if !Valid(data) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkValidScalarASCII8K(b *testing.B) {
	data := bytes.Repeat([]byte("a"), 8000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if !ValidScalar(data) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkValidMixed8K(b *testing.B) {
	unit := []byte("ascii 日本語 mixed ")
	data := bytes.Repeat(unit, 8000/len(unit)+1)[:8000]
	for len(data) > 0 && !utf8.Valid(data) {
		data = data[:len(data)-1] // trim a split rune at the cut point
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if !Valid(data) {
			b.Fatal("invalid")
		}
	}
}
