// Package utf8x provides UTF-8 validation for string fields.
//
// The paper (Sec. V) notes that UTF-8 validation is one of the costly
// operations in protobuf deserialization and that the host's x86 SIMD units
// validate much faster than the DPU's ARM cores. We provide two paths:
//
//   - Valid: a word-at-a-time validator whose ASCII fast path processes
//     8 bytes per iteration, standing in for the SIMD path on the host;
//   - ValidScalar: a strict byte-at-a-time validator representing the
//     non-vectorized path.
//
// Both implement the same function (RFC 3629: reject surrogates, overlong
// encodings, and code points above U+10FFFF) and are cross-checked against
// unicode/utf8 in the tests.
package utf8x

// asciiMask has the high bit of every byte set; a word AND-ing to zero is
// pure ASCII.
const asciiMask = 0x8080808080808080

// Valid reports whether b is valid UTF-8, using an 8-bytes-at-a-time ASCII
// fast path before falling back to the scalar state machine for multi-byte
// sequences.
func Valid(b []byte) bool {
	i := 0
	n := len(b)
	for i+8 <= n {
		w := uint64(b[i]) | uint64(b[i+1])<<8 | uint64(b[i+2])<<16 | uint64(b[i+3])<<24 |
			uint64(b[i+4])<<32 | uint64(b[i+5])<<40 | uint64(b[i+6])<<48 | uint64(b[i+7])<<56
		if w&asciiMask != 0 {
			break
		}
		i += 8
	}
	return validScalarFrom(b, i)
}

// ValidString is Valid for strings, avoiding a copy.
func ValidString(s string) bool {
	i := 0
	n := len(s)
	for i+8 <= n {
		w := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		if w&asciiMask != 0 {
			break
		}
		i += 8
	}
	for i < n {
		c := s[i]
		if c < 0x80 {
			i++
			continue
		}
		size, ok := seqLen(c)
		if !ok || i+size > n {
			return false
		}
		if !validSeqString(s[i : i+size]) {
			return false
		}
		i += size
	}
	return true
}

// ValidScalar reports whether b is valid UTF-8 using only byte-at-a-time
// processing (the DPU-representative path).
func ValidScalar(b []byte) bool {
	return validScalarFrom(b, 0)
}

func validScalarFrom(b []byte, i int) bool {
	n := len(b)
	for i < n {
		c := b[i]
		if c < 0x80 {
			i++
			continue
		}
		size, ok := seqLen(c)
		if !ok || i+size > n {
			return false
		}
		if !validSeq(b[i : i+size]) {
			return false
		}
		i += size
	}
	return true
}

// seqLen returns the declared length of a multi-byte sequence starting with
// lead byte c, and whether c is a legal lead byte.
func seqLen(c byte) (int, bool) {
	switch {
	case c&0xe0 == 0xc0:
		if c < 0xc2 { // 0xc0/0xc1 are always overlong
			return 0, false
		}
		return 2, true
	case c&0xf0 == 0xe0:
		return 3, true
	case c&0xf8 == 0xf0:
		if c > 0xf4 { // above U+10FFFF
			return 0, false
		}
		return 4, true
	}
	return 0, false // bare continuation byte or 0xf8..0xff
}

// validSeq validates a complete multi-byte sequence (len 2..4) including
// overlong and surrogate checks.
func validSeq(s []byte) bool {
	switch len(s) {
	case 2:
		return cont(s[1])
	case 3:
		if !cont(s[1]) || !cont(s[2]) {
			return false
		}
		switch s[0] {
		case 0xe0:
			return s[1] >= 0xa0 // reject overlong
		case 0xed:
			return s[1] < 0xa0 // reject surrogates U+D800..U+DFFF
		}
		return true
	case 4:
		if !cont(s[1]) || !cont(s[2]) || !cont(s[3]) {
			return false
		}
		switch s[0] {
		case 0xf0:
			return s[1] >= 0x90 // reject overlong
		case 0xf4:
			return s[1] < 0x90 // reject above U+10FFFF
		}
		return true
	}
	return false
}

func validSeqString(s string) bool {
	switch len(s) {
	case 2:
		return cont(s[1])
	case 3:
		if !cont(s[1]) || !cont(s[2]) {
			return false
		}
		switch s[0] {
		case 0xe0:
			return s[1] >= 0xa0
		case 0xed:
			return s[1] < 0xa0
		}
		return true
	case 4:
		if !cont(s[1]) || !cont(s[2]) || !cont(s[3]) {
			return false
		}
		switch s[0] {
		case 0xf0:
			return s[1] >= 0x90
		case 0xf4:
			return s[1] < 0x90
		}
		return true
	}
	return false
}

func cont(c byte) bool { return c&0xc0 == 0x80 }
