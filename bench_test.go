// Benchmarks regenerating the paper's tables and figures. Two families:
//
//   - BenchmarkFig7_* / BenchmarkDatapath_*: real executions of the library
//     on this machine (ns/op are machine-local; the paper's absolute
//     numbers come from the modeled testbed, see cmd/dpurpc-bench);
//   - BenchmarkFig8*_*: run the evaluation harness once and report the
//     modeled testbed metrics (rps, Gb/s, host cores) via b.ReportMetric,
//     so `go test -bench Fig8` prints the figure's series.
//
// BenchmarkDatapathAllocs is the Sec. VI-C5 reproduction: the offloaded
// host-side datapath performs zero heap allocations per request.
package dpurpc_test

import (
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dpurpc/internal/abi"
	"dpurpc/internal/arena"
	"dpurpc/internal/deser"
	"dpurpc/internal/harness"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/offload"
	"dpurpc/internal/protomsg"
	"dpurpc/internal/rpcrdma"
	"dpurpc/internal/workload"
	"dpurpc/internal/xrpc"
)

// --- Fig. 7: single-message deserialization ---------------------------------

func benchDeser(b *testing.B, data []byte, lay *abi.Layout) {
	need, err := deser.MeasureExact(lay, data)
	if err != nil {
		b.Fatal(err)
	}
	bump := arena.NewBump(make([]byte, need+deser.GuardBytes))
	d := deser.New(deser.Options{ValidateUTF8: true})
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bump.Reset()
		if _, err := d.Deserialize(lay, data, bump, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_IntArray(b *testing.B) {
	env := workload.NewEnv()
	for _, n := range []int{16, 128, 512, 4096} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := mt19937.New(mt19937.DefaultSeed)
			benchDeser(b, env.GenInts(rng, n).Marshal(nil), env.IntsLay)
		})
	}
}

func BenchmarkFig7_CharArray(b *testing.B) {
	env := workload.NewEnv()
	for _, n := range []int{16, 128, 1024, 8000} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := mt19937.New(mt19937.DefaultSeed)
			benchDeser(b, env.GenChars(rng, n).Marshal(nil), env.CharsLay)
		})
	}
}

// BenchmarkFig7_StandardUnmarshal contrasts the baseline one-copy
// deserializer (heap-allocating) with the arena path above.
func BenchmarkFig7_StandardUnmarshal(b *testing.B) {
	env := workload.NewEnv()
	rng := mt19937.New(mt19937.DefaultSeed)
	data := env.GenInts(rng, 512).Marshal(nil)
	out := protomsg.New(env.IntArray)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.Clear()
		if err := out.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 8: datapath metrics (modeled testbed) ------------------------------

var fig8Once sync.Once
var fig8Rows []harness.Fig8Row
var fig8Err error

func fig8(b *testing.B) []harness.Fig8Row {
	fig8Once.Do(func() {
		opts := harness.DefaultOptions()
		opts.Requests = 8000
		fig8Rows, fig8Err = harness.RunFig8(opts)
	})
	if fig8Err != nil {
		b.Fatal(fig8Err)
	}
	return fig8Rows
}

func reportFig8(b *testing.B, scenario workload.Scenario, mode harness.Mode) {
	rows := fig8(b)
	for _, r := range rows {
		if r.Scenario == scenario && r.Mode == mode {
			for i := 0; i < b.N; i++ {
				// The harness already ran; the loop exists to satisfy the
				// benchmark contract.
			}
			b.ReportMetric(r.Result.RPS, "rps")                 // Fig. 8a
			b.ReportMetric(r.Result.BandwidthGbps, "pcie-Gb/s") // Fig. 8b
			b.ReportMetric(r.Result.HostCores, "host-cores")    // Fig. 8c
			b.ReportMetric(r.Result.DPUCores, "dpu-cores")
			return
		}
	}
	b.Fatalf("row %v/%v missing", scenario, mode)
}

func BenchmarkFig8_Small_CPU(b *testing.B) {
	reportFig8(b, workload.ScenarioSmall, harness.ModeCPU)
}
func BenchmarkFig8_Small_DPU(b *testing.B) {
	reportFig8(b, workload.ScenarioSmall, harness.ModeDPU)
}
func BenchmarkFig8_Ints_CPU(b *testing.B) {
	reportFig8(b, workload.ScenarioInts, harness.ModeCPU)
}
func BenchmarkFig8_Ints_DPU(b *testing.B) {
	reportFig8(b, workload.ScenarioInts, harness.ModeDPU)
}
func BenchmarkFig8_Chars_CPU(b *testing.B) {
	reportFig8(b, workload.ScenarioChars, harness.ModeCPU)
}
func BenchmarkFig8_Chars_DPU(b *testing.B) {
	reportFig8(b, workload.ScenarioChars, harness.ModeDPU)
}

// --- ablations ----------------------------------------------------------------

// BenchmarkAblationBlockSize regenerates the Sec. VI-A sweep.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, size := range harness.DefaultBlockSizes() {
		b.Run(itoa(size>>10)+"KiB", func(b *testing.B) {
			opts := harness.DefaultOptions()
			opts.Requests = 3000
			rows, err := harness.BlockSizeSweep(opts, []int{size})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(rows[0].RPS, "rps")
			b.ReportMetric(rows[0].MsgsPerBlock, "msgs/block")
		})
	}
}

// BenchmarkAblationPollMode regenerates the Sec. III-C comparison.
func BenchmarkAblationPollMode(b *testing.B) {
	opts := harness.DefaultOptions()
	opts.Requests = 3000
	rows, err := harness.PollModes(opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.Run(strings.ReplaceAll(r.Mode, "()", ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(r.RPS, "rps")
			b.ReportMetric(r.DPUCPUPercent, "dpu-cpu-%")
		})
	}
}

// BenchmarkAblationAllocator contrasts the offset-based dynamic allocator
// (the paper's VMA choice) with a ring buffer under an out-of-order
// completion trace — the Sec. IV-A design rationale. Head-of-line blocking
// shows up as the ring's stall fraction.
func BenchmarkAblationAllocator(b *testing.B) {
	for _, kind := range []string{"dynamic", "ringbuffer"} {
		b.Run(kind, func(b *testing.B) {
			cfg := arena.DefaultTraceConfig(b.N)
			var res arena.TraceResult
			var err error
			if kind == "dynamic" {
				a := arena.NewAllocator(cfg.Space)
				res, err = arena.RunOutOfOrderTrace(cfg, a.Alloc, a.Free, false)
			} else {
				r := arena.NewRing(cfg.Space)
				res, err = arena.RunOutOfOrderTrace(cfg, r.Alloc, r.Free, true)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stalls)/float64(b.N)*100, "stall-%")
		})
	}
}

// --- Sec. VI-C5: allocator behaviour -----------------------------------------

// BenchmarkDatapathAllocs measures heap allocations per request on the
// host-side offloaded datapath (the paper's zero-LLC-miss observation:
// "no use of the system allocator in the RPC datapath"). Expected: 0
// allocs/op in the handler and response path.
func BenchmarkDatapathAllocs(b *testing.B) {
	env := workload.NewEnv()
	rng := mt19937.New(mt19937.DefaultSeed)
	data := env.GenSmall(rng).Marshal(nil)
	lay := env.SmallLay

	// Deserialize once into a block, as the DPU would.
	need, _ := deser.MeasureExact(lay, data)
	bump := arena.NewBump(make([]byte, need))
	d := deser.New(deser.Options{ValidateUTF8: true})
	root, err := d.Deserialize(lay, data, bump, 4096)
	if err != nil {
		b.Fatal(err)
	}
	region := &abi.Region{Buf: bump.Bytes(), Base: 4096}

	// The host-side work per request: build the view, read the fields the
	// business logic touches.
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := abi.MakeView(region, root, lay)
		sink += uint64(v.U32Name("id"))
		if v.BoolName("flag") {
			sink++
		}
	}
	_ = sink
}

// --- end-to-end wall-clock (this machine) ------------------------------------

// BenchmarkDatapath_EndToEnd measures real round trips through the full
// offloaded datapath (xRPC handler -> DPU deserialization -> RPC-over-RDMA
// -> host dispatch -> response), batched at the Table I concurrency.
func BenchmarkDatapath_EndToEnd(b *testing.B) {
	for _, s := range workload.Scenarios() {
		b.Run(strings.ReplaceAll(s.String(), " ", ""), func(b *testing.B) {
			opts := harness.DefaultOptions()
			env := workload.NewEnv()
			_ = env
			b.ReportAllocs()
			// Use the harness's offload runner once per benchmark
			// invocation sized to b.N.
			opts.Requests = b.N
			if opts.Requests < 64 {
				opts.Requests = 64
			}
			b.ResetTimer()
			row, err := harness.RunOffload(s, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(row.Result.RPS, "modeled-rps")
		})
	}
}

// BenchmarkDPUWorkerScaling contrasts the serial DPU datapath (workers=1)
// with the reserve → parallel build → commit pipeline on the large-message
// workload (Chars x8000), where deserialization dominates and the pipeline's
// extra cores pay off. Before timing, every worker count replays a fixed
// batch and must deliver deserialized objects canonically identical to the
// serial datapath (re-serialization digest per request, in order).
func BenchmarkDPUWorkerScaling(b *testing.B) {
	env := workload.NewEnv()
	rng := mt19937.New(mt19937.DefaultSeed)
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = env.GenChars(rng, workload.CharsCount).Marshal(nil)
	}
	method := xrpc.FullMethodName("benchpb.Bench", "CallChars")
	empty := func(req abi.View) (*protomsg.Message, uint16) { return nil, 0 }
	impls := map[string]offload.Impl{
		"benchpb.Bench": {"CallSmall": empty, "CallInts": empty, "CallChars": empty, "Echo": empty, "EchoBlob": empty},
	}

	newDeployment := func(workers int) *offload.Deployment {
		ccfg := rpcrdma.DefaultClientConfig()
		scfg := rpcrdma.DefaultServerConfig()
		ccfg.BusyPoll, scfg.BusyPoll = true, true
		d, err := offload.NewDeploymentWith(env.Table, impls, offload.DeployConfig{
			Connections: 1, ClientCfg: ccfg, ServerCfg: scfg, DPUWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	drive := func(b *testing.B, d *offload.Deployment, n int) {
		b.Helper()
		submitted, completed, failed := 0, 0, 0
		for completed < n {
			for submitted < n && submitted-completed < rpcrdma.DefaultConcurrency {
				err := d.DPUs[0].SubmitLocal(method, payloads[submitted%len(payloads)],
					func(status uint16, errFlag bool, resp []byte) {
						completed++
						if status != 0 || errFlag {
							failed++
						}
					})
				if err != nil {
					b.Fatal(err)
				}
				submitted++
			}
			if _, err := d.DPUs[0].Progress(); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Poller.Progress(); err != nil {
				b.Fatal(err)
			}
		}
		if failed > 0 {
			b.Fatalf("%d failed calls", failed)
		}
	}
	const verifyCalls = 160
	digests := func(workers int) []uint64 {
		d := newDeployment(workers)
		defer d.Close()
		var sums []uint64
		d.Host.SetRequestObserver(func(req rpcrdma.Request) {
			view := abi.MakeView(&abi.Region{Buf: req.Payload, Base: req.RegionOff},
				req.RegionOff+uint64(req.Root), env.CharsLay)
			wire, err := deser.Serialize(view, nil)
			if err != nil {
				b.Error(err)
			}
			h := fnv.New64a()
			h.Write(wire)
			sums = append(sums, h.Sum64())
		})
		drive(b, d, verifyCalls)
		return sums
	}
	ref := digests(1)

	// Pipeline width: the machine's parallelism, floored at 4 so the
	// pipelined path is exercised (and its identity pinned) even on
	// single-core runners where no wall-clock speedup is possible.
	pipelined := runtime.GOMAXPROCS(0)
	if pipelined < 4 {
		pipelined = 4
	}
	for _, workers := range []int{1, pipelined} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			got := digests(workers)
			if len(got) != len(ref) {
				b.Fatalf("%d requests observed, want %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					b.Fatalf("request %d diverges from the serial datapath", i)
				}
			}
			d := newDeployment(workers)
			defer d.Close()
			b.SetBytes(int64(len(payloads[0])))
			b.ResetTimer()
			drive(b, d, b.N)
		})
	}
}

// BenchmarkResponseSerializationScaling is the response-direction mirror of
// BenchmarkDPUWorkerScaling: the Echo workload sends the x8000-chars payload
// back through the duplex pipeline (host build workers + DPU serialization
// workers) with response-serialization offload on. Before timing, every
// width replays a fixed batch and each response — indexed by submission
// order, since completions are reordered — must be byte-identical (fnv64a
// digest) to the serial width. Reported: wall-clock ns/op on this machine
// plus the modeled testbed RPS at that width.
func BenchmarkResponseSerializationScaling(b *testing.B) {
	env := workload.NewEnv()
	rng := mt19937.New(mt19937.DefaultSeed)
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = env.GenChars(rng, workload.CharsCount).Marshal(nil)
	}
	method := xrpc.FullMethodName("benchpb.Bench", "Echo")
	empty := func(req abi.View) (*protomsg.Message, uint16) { return nil, 0 }
	impls := map[string]offload.Impl{
		"benchpb.Bench": {
			"CallSmall": empty, "CallInts": empty, "CallChars": empty, "EchoBlob": empty,
			"Echo": func(req abi.View) (*protomsg.Message, uint16) {
				out := protomsg.New(env.CharArray)
				out.SetString("data", string(req.StrName("data")))
				return out, 0
			},
		},
	}

	newDeployment := func(workers int) *offload.Deployment {
		ccfg := rpcrdma.DefaultClientConfig()
		scfg := rpcrdma.DefaultServerConfig()
		ccfg.BusyPoll, scfg.BusyPoll = true, true
		d, err := offload.NewDeploymentWith(env.Table, impls, offload.DeployConfig{
			Connections: 1, ClientCfg: ccfg, ServerCfg: scfg,
			DPUWorkers: workers, HostWorkers: workers,
			OffloadResponseSerialization: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	// drive submits n Echo calls; with sums != nil each response is digested
	// into its submission slot (completion order is nondeterministic under
	// the pipeline, the slot index is not).
	drive := func(b *testing.B, d *offload.Deployment, n int, sums []uint64) {
		b.Helper()
		submitted, completed, failed := 0, 0, 0
		for completed < n {
			for submitted < n && submitted-completed < rpcrdma.DefaultConcurrency {
				idx := submitted
				err := d.DPUs[0].SubmitLocal(method, payloads[idx%len(payloads)],
					func(status uint16, errFlag bool, resp []byte) {
						completed++
						if status != 0 || errFlag {
							failed++
						}
						if sums != nil {
							h := fnv.New64a()
							h.Write(resp)
							sums[idx] = h.Sum64()
						}
					})
				if err != nil {
					b.Fatal(err)
				}
				submitted++
			}
			if _, err := d.DPUs[0].Progress(); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Poller.Progress(); err != nil {
				b.Fatal(err)
			}
		}
		if failed > 0 {
			b.Fatalf("%d failed calls", failed)
		}
	}
	const verifyCalls = 160
	digests := func(workers int) []uint64 {
		d := newDeployment(workers)
		defer d.Close()
		sums := make([]uint64, verifyCalls)
		drive(b, d, verifyCalls, sums)
		return sums
	}
	ref := digests(1)

	pipelined := runtime.GOMAXPROCS(0)
	if pipelined < 4 {
		pipelined = 4
	}
	for _, workers := range []int{1, pipelined} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			got := digests(workers)
			for i := range ref {
				if got[i] != ref[i] {
					b.Fatalf("response %d diverges from the serial response path", i)
				}
			}
			d := newDeployment(workers)
			defer d.Close()
			b.SetBytes(int64(len(payloads[0])))
			b.ResetTimer()
			drive(b, d, b.N, nil)
			b.StopTimer()
			opts := harness.DefaultOptions()
			opts.Requests = 2000
			rows, err := harness.ResponseScaling(opts, []int{workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].Result.RPS, "modeled-rps")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
