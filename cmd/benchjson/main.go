// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results. The raw lines pass through to stdout so the
// terminal still shows the run; the JSON goes to -out (default
// BENCH.json).
//
// With -compare BASELINE.json the fresh results are diffed against a
// checked-in snapshot instead: benchmarks whose ns/op regressed more than
// -tolerance fail the run (exit 1). Unless -out is given explicitly,
// compare mode writes nothing.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/deser | go run ./cmd/benchjson -out BENCH_deser.json
//	go test -bench . -benchmem ./internal/deser | go run ./cmd/benchjson -compare BENCH_deser.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. MBs, BOp, and AllocsOp are present only
// when the run reported them (-benchmem, b.SetBytes).
type Result struct {
	Name       string   `json:"name"`
	Package    string   `json:"package,omitempty"`
	Iterations int64    `json:"iterations"`
	NsOp       float64  `json:"ns_op"`
	MBs        *float64 `json:"mb_s,omitempty"`
	BOp        *int64   `json:"b_op,omitempty"`
	AllocsOp   *int64   `json:"allocs_op,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH.json", "file to write the JSON array to")
	compare := flag.String("compare", "",
		"baseline JSON to diff the fresh results against; regressions beyond -tolerance exit 1")
	tolerance := flag.Float64("tolerance", 0.10,
		"fractional ns/op regression allowed by -compare")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		nsOp, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsOp: nsOp}
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			r.MBs = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.BOp = &v
		}
		if m[6] != "" {
			v, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsOp = &v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *compare == "" || outSet {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
	if *compare != "" {
		if !compareResults(results, *compare, *tolerance) {
			os.Exit(1)
		}
	}
}

// compareResults diffs fresh ns/op against the baseline file and reports
// every matched benchmark to stderr. Returns false if any benchmark
// regressed beyond tol. Benchmarks present on only one side are reported
// but never fail the comparison — adding a benchmark must not break the
// check before the snapshot is regenerated.
func compareResults(fresh []Result, baselinePath string, tol float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return false
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return false
	}
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Package+"/"+r.Name] = r
	}
	regressions, matched := 0, 0
	for _, r := range fresh {
		key := r.Package + "/" + r.Name
		b, ok := base[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: new (not in %s): %s\n", baselinePath, key)
			continue
		}
		matched++
		delete(base, key)
		if b.NsOp <= 0 {
			continue
		}
		delta := (r.NsOp - b.NsOp) / b.NsOp
		mark := ""
		if delta > tol {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-60s %10.2f -> %10.2f ns/op  %+6.1f%%%s\n",
			key, b.NsOp, r.NsOp, 100*delta, mark)
	}
	for key := range base {
		fmt.Fprintf(os.Stderr, "benchjson: missing from this run: %s\n", key)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %s\n", baselinePath)
		return false
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %.0f%% vs %s\n",
			regressions, matched, 100*tol, baselinePath)
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s\n",
		matched, 100*tol, baselinePath)
	return true
}
