// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results. The raw lines pass through to stdout so the
// terminal still shows the run; the JSON goes to -out (default
// BENCH.json).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/deser | go run ./cmd/benchjson -out BENCH_deser.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line. MBs, BOp, and AllocsOp are present only
// when the run reported them (-benchmem, b.SetBytes).
type Result struct {
	Name       string   `json:"name"`
	Package    string   `json:"package,omitempty"`
	Iterations int64    `json:"iterations"`
	NsOp       float64  `json:"ns_op"`
	MBs        *float64 `json:"mb_s,omitempty"`
	BOp        *int64   `json:"b_op,omitempty"`
	AllocsOp   *int64   `json:"allocs_op,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH.json", "file to write the JSON array to")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		nsOp, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsOp: nsOp}
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			r.MBs = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.BOp = &v
		}
		if m[6] != "" {
			v, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsOp = &v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
