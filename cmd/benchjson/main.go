// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of benchmark results. The raw lines pass through to stdout so the
// terminal still shows the run; the JSON goes to -out (default
// BENCH.json).
//
// With -compare BASELINE.json the fresh results are diffed against a
// checked-in snapshot instead: benchmarks whose ns/op regressed more than
// -tolerance fail the run (exit 1). Custom metrics (b.ReportMetric units
// like hit_rate) are captured into the JSON and gated only when named by a
// -metric-tolerance flag, each at its own two-sided tolerance — so a
// hit-rate gate can be tight without loosening the ns/op tolerance, and
// vice versa. Unless -out is given explicitly, compare mode writes nothing.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/deser | go run ./cmd/benchjson -out BENCH_deser.json
//	go test -bench . -benchmem ./internal/deser | go run ./cmd/benchjson -compare BENCH_deser.json
//	go test -bench . -benchmem ./internal/rpccache \
//		| go run ./cmd/benchjson -compare BENCH_cache.json -metric-tolerance hit_rate=0.05
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. MBs, BOp, and AllocsOp are present only
// when the run reported them (-benchmem, b.SetBytes); Metrics holds any
// custom b.ReportMetric units.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsOp       float64            `json:"ns_op"`
	MBs        *float64           `json:"mb_s,omitempty"`
	BOp        *int64             `json:"b_op,omitempty"`
	AllocsOp   *int64             `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseBenchLine parses one `BenchmarkX-8  N  v unit  v unit ...` line.
// The testing package emits ns/op first, MB/s and custom metrics next, and
// the -benchmem pair last; parsing generic value/unit pairs covers every
// ordering.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	sawNsOp := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp = v
			sawNsOp = true
		case "MB/s":
			r.MBs = &v
		case "B/op":
			b := int64(v)
			r.BOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNsOp
}

// metricTolerances is the repeatable -metric-tolerance name=frac flag.
type metricTolerances map[string]float64

func (m metricTolerances) String() string {
	parts := make([]string, 0, len(m))
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (m metricTolerances) Set(s string) error {
	name, frac, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=frac, got %q", s)
	}
	v, err := strconv.ParseFloat(frac, 64)
	if err != nil || v < 0 {
		return fmt.Errorf("bad tolerance in %q", s)
	}
	m[name] = v
	return nil
}

func main() {
	out := flag.String("out", "BENCH.json", "file to write the JSON array to")
	compare := flag.String("compare", "",
		"baseline JSON to diff the fresh results against; regressions beyond -tolerance exit 1")
	tolerance := flag.Float64("tolerance", 0.10,
		"fractional ns/op regression allowed by -compare")
	metricTol := metricTolerances{}
	flag.Var(metricTol, "metric-tolerance",
		"name=frac: gate the named custom metric (b.ReportMetric unit) within ±frac of the baseline; repeatable")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *compare == "" || outSet {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
	if *compare != "" {
		if !compareResults(results, *compare, *tolerance, metricTol) {
			os.Exit(1)
		}
	}
}

// compareResults diffs fresh ns/op against the baseline file and reports
// every matched benchmark to stderr. Custom metrics named in metricTol are
// additionally gated two-sided at their own tolerance (a hit rate that
// *rose* 20% is as suspicious a snapshot drift as one that fell). Returns
// false if any benchmark regressed beyond its tolerance. Benchmarks (or
// metrics) present on only one side are reported but never fail the
// comparison — adding a benchmark must not break the check before the
// snapshot is regenerated.
func compareResults(fresh []Result, baselinePath string, tol float64, metricTol metricTolerances) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return false
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return false
	}
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Package+"/"+r.Name] = r
	}
	regressions, matched := 0, 0
	for _, r := range fresh {
		key := r.Package + "/" + r.Name
		b, ok := base[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: new (not in %s): %s\n", baselinePath, key)
			continue
		}
		matched++
		delete(base, key)
		if b.NsOp > 0 {
			delta := (r.NsOp - b.NsOp) / b.NsOp
			mark := ""
			if delta > tol {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(os.Stderr, "benchjson: %-60s %10.2f -> %10.2f ns/op  %+6.1f%%%s\n",
				key, b.NsOp, r.NsOp, 100*delta, mark)
		}
		for _, name := range sortedKeys(metricTol) {
			mt := metricTol[name]
			bv, inBase := b.Metrics[name]
			rv, inFresh := r.Metrics[name]
			if !inBase || !inFresh || bv == 0 {
				continue
			}
			delta := (rv - bv) / bv
			mark := ""
			if math.Abs(delta) > mt {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(os.Stderr, "benchjson: %-60s %10.4f -> %10.4f %s  %+6.1f%%%s\n",
				key, bv, rv, name, 100*delta, mark)
		}
	}
	for key := range base {
		fmt.Fprintf(os.Stderr, "benchjson: missing from this run: %s\n", key)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %s\n", baselinePath)
		return false
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed beyond tolerance vs %s\n",
			regressions, matched, baselinePath)
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within tolerance of %s\n",
		matched, baselinePath)
	return true
}

func sortedKeys(m metricTolerances) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
