package main

// Typed-binding generation: the Go analogue of the paper's protoc plugin
// output (Sec. V-D: "our custom protobuf plugin automatically generates
// introspection code", and Sec. I: "we implement a simple gRPC server with
// minimal code modifications thanks to the automatic code generators we
// write"). For every message the generator emits a typed builder (over the
// dynamic message) and a typed zero-copy view (over the shared-region
// object); for every service it emits a host-side interface with a Register
// function and a typed client.

import (
	"fmt"
	"sort"
	"strings"

	"dpurpc/internal/adt"
	"dpurpc/internal/protodesc"
)

// goName converts a proto identifier (snake_case or lowerCamel) to an
// exported Go name.
func goName(s string) string {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == '_' || r == '.' || r == '-' })
	var sb strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		sb.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	return sb.String()
}

// typeName converts a fully-qualified message name to the generated Go type
// name: the package prefix is stripped, nesting becomes underscores.
func typeName(pkg, fq string) string {
	rest := strings.TrimPrefix(fq, pkg+".")
	return strings.ReplaceAll(rest, ".", "_")
}

// scalarGoType maps a field kind to the builder-side Go type.
func scalarGoType(k protodesc.Kind) string {
	switch k {
	case protodesc.KindBool:
		return "bool"
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32, protodesc.KindEnum:
		return "int32"
	case protodesc.KindUint32, protodesc.KindFixed32:
		return "uint32"
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return "int64"
	case protodesc.KindUint64, protodesc.KindFixed64:
		return "uint64"
	case protodesc.KindFloat:
		return "float32"
	case protodesc.KindDouble:
		return "float64"
	}
	return ""
}

// setterMethod maps a field kind to the protomsg setter.
func setterMethod(k protodesc.Kind) string {
	switch k {
	case protodesc.KindBool:
		return "SetBool"
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32:
		return "SetInt32"
	case protodesc.KindUint32, protodesc.KindFixed32:
		return "SetUint32"
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return "SetInt64"
	case protodesc.KindUint64, protodesc.KindFixed64:
		return "SetUint64"
	case protodesc.KindFloat:
		return "SetFloat"
	case protodesc.KindDouble:
		return "SetDouble"
	case protodesc.KindEnum:
		return "SetEnum"
	}
	return ""
}

// getterMethod maps a field kind to the protomsg getter.
func getterMethod(k protodesc.Kind) string {
	switch k {
	case protodesc.KindBool:
		return "Bool"
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32, protodesc.KindEnum:
		return "Int32"
	case protodesc.KindUint32, protodesc.KindFixed32:
		return "Uint32"
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return "Int64"
	case protodesc.KindUint64, protodesc.KindFixed64:
		return "Uint64"
	case protodesc.KindFloat:
		return "Float"
	case protodesc.KindDouble:
		return "Double"
	}
	return ""
}

// viewGetter maps a field kind to the abi.View accessor for scalars.
func viewGetter(k protodesc.Kind) string {
	switch k {
	case protodesc.KindBool:
		return "BoolName"
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32, protodesc.KindEnum:
		return "I32Name"
	case protodesc.KindUint32, protodesc.KindFixed32:
		return "U32Name"
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return "I64Name"
	case protodesc.KindUint64, protodesc.KindFixed64:
		return "U64Name"
	case protodesc.KindFloat:
		return "F32Name"
	case protodesc.KindDouble:
		return "F64Name"
	}
	return ""
}

// bitsExpr renders the raw-bits conversion used by AppendNum for a typed
// value expression.
func bitsExpr(k protodesc.Kind, v string) string {
	switch k {
	case protodesc.KindBool:
		return fmt.Sprintf("boolBits(%s)", v)
	case protodesc.KindFloat:
		return fmt.Sprintf("uint64(math.Float32bits(%s))", v)
	case protodesc.KindDouble:
		return fmt.Sprintf("math.Float64bits(%s)", v)
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32, protodesc.KindEnum:
		return fmt.Sprintf("uint64(uint32(%s))", v)
	case protodesc.KindUint32, protodesc.KindFixed32:
		return fmt.Sprintf("uint64(%s)", v)
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return fmt.Sprintf("uint64(%s)", v)
	default:
		return v
	}
}

// fromBitsExpr renders the inverse conversion from raw bits.
func fromBitsExpr(k protodesc.Kind, v string) string {
	switch k {
	case protodesc.KindBool:
		return fmt.Sprintf("%s != 0", v)
	case protodesc.KindFloat:
		return fmt.Sprintf("math.Float32frombits(uint32(%s))", v)
	case protodesc.KindDouble:
		return fmt.Sprintf("math.Float64frombits(%s)", v)
	case protodesc.KindInt32, protodesc.KindSint32, protodesc.KindSfixed32, protodesc.KindEnum:
		return fmt.Sprintf("int32(uint32(%s))", v)
	case protodesc.KindUint32, protodesc.KindFixed32:
		return fmt.Sprintf("uint32(%s)", v)
	case protodesc.KindInt64, protodesc.KindSint64, protodesc.KindSfixed64:
		return fmt.Sprintf("int64(%s)", v)
	default:
		return v
	}
}

// genBindings renders the typed-bindings file.
func genBindings(pkg, base, src string, file *protodesc.File, table *adt.Table) (string, error) {
	var sb strings.Builder

	fmt.Fprintf(&sb, "// Code generated by adtgen from %s.proto; DO NOT EDIT.\n\n", base)
	fmt.Fprintf(&sb, "// Package %s provides typed bindings for the %s schema:\n", pkg, base)
	sb.WriteString("// builders over dynamic messages, zero-copy views over shared-region\n")
	sb.WriteString("// objects, and service interfaces for the offloaded stack.\n")
	fmt.Fprintf(&sb, "package %s\n\n", pkg)

	var body strings.Builder

	// Schema loader.
	fmt.Fprintf(&body, "// SchemaSource is the embedded proto3 source.\nconst SchemaSource = %q\n\n", src)
	fmt.Fprintf(&body, "// SchemaFingerprint pins the ADT at generation time.\nconst SchemaFingerprint uint64 = 0x%016x\n\n", table.Fingerprint())
	body.WriteString(`// LoadSchema parses the embedded source and verifies the fingerprint.
func LoadSchema() (*dpurpc.Schema, error) {
	s, err := dpurpc.ParseSchema("` + base + `.proto", SchemaSource)
	if err != nil {
		return nil, err
	}
	if got := s.Table.Fingerprint(); got != SchemaFingerprint {
		return nil, fmt.Errorf("` + base + `: ADT fingerprint drift: %016x", got)
	}
	return s, nil
}

func boolBits(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

`)

	// Enums: typed constants.
	enums := append([]*protodesc.Enum(nil), file.Enums...)
	sort.Slice(enums, func(i, j int) bool { return enums[i].Name < enums[j].Name })
	for _, e := range enums {
		tn := typeName(file.Package, e.Name)
		fmt.Fprintf(&body, "// %s is the %s enum.\ntype %s = int32\n\nconst (\n", tn, e.Name, tn)
		for _, v := range e.Values {
			fmt.Fprintf(&body, "\t%s_%s %s = %d\n", tn, v.Name, tn, v.Number)
		}
		body.WriteString(")\n\n")
	}

	// Messages: builder + view types.
	msgs := append([]*protodesc.Message(nil), file.Messages...)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Name < msgs[j].Name })
	for _, m := range msgs {
		tn := typeName(file.Package, m.Name)
		fmt.Fprintf(&body, "// %s is a typed builder over a dynamic %s message.\n", tn, m.Name)
		fmt.Fprintf(&body, "type %s struct{ M *dpurpc.Message }\n\n", tn)
		fmt.Fprintf(&body, "// New%s returns an empty %s.\nfunc New%s(s *dpurpc.Schema) %s {\n\treturn %s{M: s.NewMessage(%q)}\n}\n\n",
			tn, m.Name, tn, tn, tn, m.Name)
		fmt.Fprintf(&body, "// %sView is a typed zero-copy view of a deserialized %s.\n", tn, m.Name)
		fmt.Fprintf(&body, "type %sView struct{ V dpurpc.View }\n\n", tn)

		for _, f := range m.Fields {
			fn := goName(f.Name)
			switch {
			case f.Repeated && f.Kind.IsPackable():
				gt := scalarGoType(f.Kind)
				fmt.Fprintf(&body, "// Add%s appends to the repeated %s field.\nfunc (x %s) Add%s(v %s) { x.M.AppendNum(%q, %s) }\n\n",
					fn, f.Name, tn, fn, gt, f.Name, bitsExpr(f.Kind, "v"))
				fmt.Fprintf(&body, "// %s returns the repeated %s field.\nfunc (x %s) %s() []%s {\n\traw := x.M.Nums(%q)\n\tout := make([]%s, len(raw))\n\tfor i, b := range raw {\n\t\tout[i] = %s\n\t}\n\treturn out\n}\n\n",
					fn, f.Name, tn, fn, gt, f.Name, gt, fromBitsExpr(f.Kind, "b"))
				// View side.
				fmt.Fprintf(&body, "// %sLen returns the element count of %s.\nfunc (x %sView) %sLen() int { return x.V.LenName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sAt returns element i of %s.\nfunc (x %sView) %sAt(i int) %s {\n\tb := x.V.NumAtName(%q, i)\n\t_ = b\n\treturn %s\n}\n\n",
					fn, f.Name, tn, fn, gt, f.Name, fromBitsExpr(f.Kind, "b"))
			case f.Repeated && f.Kind == protodesc.KindString:
				fmt.Fprintf(&body, "// Add%s appends to the repeated %s field.\nfunc (x %s) Add%s(v string) error { return x.M.AppendString(%q, v) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sLen returns the element count of %s.\nfunc (x %sView) %sLen() int { return x.V.LenName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sAt returns element i of %s (zero-copy).\nfunc (x %sView) %sAt(i int) []byte { return x.V.StrAtName(%q, i) }\n\n",
					fn, f.Name, tn, fn, f.Name)
			case f.Repeated && f.Kind == protodesc.KindBytes:
				fmt.Fprintf(&body, "// Add%s appends to the repeated %s field.\nfunc (x %s) Add%s(v []byte) error { return x.M.AppendBytes(%q, v) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sLen returns the element count of %s.\nfunc (x %sView) %sLen() int { return x.V.LenName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sAt returns element i of %s (zero-copy).\nfunc (x %sView) %sAt(i int) []byte { return x.V.StrAtName(%q, i) }\n\n",
					fn, f.Name, tn, fn, f.Name)
			case f.Repeated: // message
				ct := typeName(file.Package, f.Message.Name)
				fmt.Fprintf(&body, "// Add%s appends a child to the repeated %s field.\nfunc (x %s) Add%s(v %s) error { return x.M.AppendMessage(%q, v.M) }\n\n",
					fn, f.Name, tn, fn, ct, f.Name)
				fmt.Fprintf(&body, "// %sLen returns the element count of %s.\nfunc (x %sView) %sLen() int { return x.V.LenName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %sAt returns element i of %s as a zero-copy view.\nfunc (x %sView) %sAt(i int) (%sView, bool) {\n\tv, ok := x.V.MsgAtName(%q, i)\n\treturn %sView{V: v}, ok\n}\n\n",
					fn, f.Name, tn, fn, ct, f.Name, ct)
			case f.Kind == protodesc.KindString:
				fmt.Fprintf(&body, "// Set%s sets the %s field (must be valid UTF-8).\nfunc (x %s) Set%s(v string) error { return x.M.SetString(%q, v) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field.\nfunc (x %s) %s() string { return x.M.GetString(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field (zero-copy bytes).\nfunc (x %sView) %s() []byte { return x.V.StrName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
			case f.Kind == protodesc.KindBytes:
				fmt.Fprintf(&body, "// Set%s sets the %s field.\nfunc (x %s) Set%s(v []byte) error { return x.M.SetBytes(%q, v) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field.\nfunc (x %s) %s() []byte { return x.M.Bytes(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field (zero-copy).\nfunc (x %sView) %s() []byte { return x.V.StrName(%q) }\n\n",
					fn, f.Name, tn, fn, f.Name)
			case f.Kind == protodesc.KindMessage:
				ct := typeName(file.Package, f.Message.Name)
				fmt.Fprintf(&body, "// Set%s sets the %s field.\nfunc (x %s) Set%s(v %s) error { return x.M.SetMessage(%q, v.M) }\n\n",
					fn, f.Name, tn, fn, ct, f.Name)
				fmt.Fprintf(&body, "// Mutable%s returns the %s field, allocating it if unset.\nfunc (x %s) Mutable%s() %s { return %s{M: x.M.MutableMsg(%q)} }\n\n",
					fn, f.Name, tn, fn, ct, ct, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field (zero %s if unset).\nfunc (x %s) %s() %s { return %s{M: x.M.Msg(%q)} }\n\n",
					fn, f.Name, ct, tn, fn, ct, ct, f.Name)
				fmt.Fprintf(&body, "// %s returns the %s field as a zero-copy view.\nfunc (x %sView) %s() (%sView, bool) {\n\tv, ok := x.V.MsgName(%q)\n\treturn %sView{V: v}, ok\n}\n\n",
					fn, f.Name, tn, fn, ct, f.Name, ct)
			default: // singular scalar / enum
				gt := scalarGoType(f.Kind)
				if f.Kind == protodesc.KindEnum {
					gt = typeName(file.Package, f.Enum.Name)
				}
				set, get := setterMethod(f.Kind), getterMethod(f.Kind)
				fmt.Fprintf(&body, "// Set%s sets the %s field.\nfunc (x %s) Set%s(v %s) { x.M.%s(%q, v) }\n\n",
					fn, f.Name, tn, fn, gt, set, f.Name)
				castOpen, castClose := "", ""
				if f.Kind == protodesc.KindEnum {
					castOpen, castClose = gt+"(", ")"
				}
				fmt.Fprintf(&body, "// %s returns the %s field.\nfunc (x %s) %s() %s { return %sx.M.%s(%q)%s }\n\n",
					fn, f.Name, tn, fn, gt, castOpen, get, f.Name, castClose)
				vg := viewGetter(f.Kind)
				fmt.Fprintf(&body, "// %s returns the %s field.\nfunc (x %sView) %s() %s { return %sx.V.%s(%q)%s }\n\n",
					fn, f.Name, tn, fn, gt, castOpen, vg, f.Name, castClose)
			}
		}
	}

	// Services: host interface + register + typed client.
	for _, svc := range file.Services {
		sn := typeName(file.Package, svc.Name)
		fmt.Fprintf(&body, "// %sServer is the host-side implementation of %s. Handlers receive\n// zero-copy request views and return (response, status); status 0 is OK\n// and a zero response is sent as an empty message.\n", sn, svc.Name)
		fmt.Fprintf(&body, "type %sServer interface {\n", sn)
		for _, m := range svc.Methods {
			in := typeName(file.Package, m.Input.Name)
			out := typeName(file.Package, m.Output.Name)
			fmt.Fprintf(&body, "\t%s(req %sView) (%s, uint16)\n", m.Name, in, out)
		}
		body.WriteString("}\n\n")
		fmt.Fprintf(&body, "// Register%s adapts srv for dpurpc.NewOffloadedStack / NewBaselineStack.\nfunc Register%s(srv %sServer) map[string]dpurpc.Impl {\n\treturn map[string]dpurpc.Impl{\n\t\t%q: {\n", sn, sn, sn, svc.Name)
		for _, m := range svc.Methods {
			in := typeName(file.Package, m.Input.Name)
			fmt.Fprintf(&body, "\t\t\t%q: func(req dpurpc.View) (*dpurpc.Message, uint16) {\n\t\t\t\tout, status := srv.%s(%sView{V: req})\n\t\t\t\treturn out.M, status\n\t\t\t},\n",
				m.Name, m.Name, in)
		}
		body.WriteString("\t\t},\n\t}\n}\n\n")

		fmt.Fprintf(&body, "// %sClient is a typed client for %s.\ntype %sClient struct {\n\tC *dpurpc.Client\n\tS *dpurpc.Schema\n}\n\n", sn, svc.Name, sn)
		for _, m := range svc.Methods {
			in := typeName(file.Package, m.Input.Name)
			out := typeName(file.Package, m.Output.Name)
			fmt.Fprintf(&body, "// %s calls %s.%s.\nfunc (c %sClient) %s(req %s) (%s, error) {\n\tresp, err := c.C.Call(c.S, %q, %q, req.M)\n\tif err != nil {\n\t\treturn %s{}, err\n\t}\n\treturn %s{M: resp}, nil\n}\n\n",
				m.Name, svc.Name, m.Name, sn, m.Name, in, out, svc.Name, m.Name, out, out)
		}
	}

	// Imports (math only when the generated body uses it).
	sb.WriteString("import (\n\t\"fmt\"\n")
	if strings.Contains(body.String(), "math.") {
		sb.WriteString("\t\"math\"\n")
	}
	sb.WriteString("\n\t\"dpurpc\"\n)\n\n")
	sb.WriteString(body.String())
	return sb.String(), nil
}
