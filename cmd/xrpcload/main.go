// Command xrpcload serves and drives the benchmark service over real TCP —
// the xRPC clients of Fig. 1. It can start either deployment (the DPU
// termination is simulated in-process) and generate pipelined load against
// any xRPC address.
//
// Serve the offloaded stack (with the live telemetry endpoint):
//
//	xrpcload -serve -mode offload -addr 127.0.0.1:7788 -debug-addr 127.0.0.1:9090
//
// Drive load against it from another terminal:
//
//	xrpcload -addr 127.0.0.1:7788 -scenario small -n 200000 -pipeline 256
//
// While load runs, http://127.0.0.1:9090/metrics serves the per-method RPC
// series as Prometheus text and /trace serves the recorded datapath spans as
// Chrome trace-event JSON (open it in Perfetto or chrome://tracing).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"dpurpc"
	"dpurpc/internal/metrics"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/trace"
	"dpurpc/internal/workload"
	"dpurpc/internal/xrpc"
)

func main() {
	serve := flag.Bool("serve", false, "run a server instead of generating load")
	mode := flag.String("mode", "offload", "server mode: offload | baseline")
	addr := flag.String("addr", "127.0.0.1:7788", "xRPC address")
	scenario := flag.String("scenario", "small", "workload: small | ints | chars | blob (EchoBlob, sized by -payload-size)")
	n := flag.Int("n", 100000, "requests to send")
	pipeline := flag.Int("pipeline", 256, "in-flight requests per connection")
	conns := flag.Int("conns", 1, "client connections")
	payloadSize := flag.Int("payload-size", 64<<10, "blob scenario payload bytes")
	sgMin := flag.Int("sg-min", 0,
		"scatter-gather payload threshold in bytes for the offload server (0 disables SG framing)")
	cacheMethods := flag.String("cache-methods", "",
		"comma-separated full method names (/benchpb.Bench/CallSmall,...) opted into the DPU-resident response cache; empty disables")
	debugAddr := flag.String("debug-addr", "",
		"serve live telemetry on this address while serving (/metrics, /trace, /anatomy, /tail, /gauges, /healthz); empty disables")
	pprofFlag := flag.Bool("pprof", false,
		"mount net/http/pprof profiles under /debug/pprof/ on the -debug-addr mux")
	flag.Parse()

	if *serve {
		runServer(*mode, *addr, *debugAddr, *sgMin, *cacheMethods, *pprofFlag)
		return
	}
	runClient(*addr, *scenario, *n, *pipeline, *conns, *payloadSize)
}

func benchSchema() *dpurpc.Schema {
	schema, err := dpurpc.ParseSchema("bench.proto", workload.Schema)
	if err != nil {
		fatal(err)
	}
	return schema
}

func emptyImpls(schema *dpurpc.Schema) map[string]dpurpc.Impl {
	empty := func(req dpurpc.View) (*dpurpc.Message, uint16) { return nil, 0 }
	return map[string]dpurpc.Impl{
		"benchpb.Bench": {"CallSmall": empty, "CallInts": empty, "CallChars": empty, "Echo": empty, "EchoBlob": empty},
	}
}

func runServer(mode, addr, debugAddr string, sgMin int, cacheMethods string, pprofEnabled bool) {
	schema := benchSchema()
	var opts dpurpc.StackOptions
	var tracer *trace.Tracer
	opts.SGPayloadMin = sgMin
	if cacheMethods != "" {
		opts.CacheMethods = strings.Split(cacheMethods, ",")
	}
	if debugAddr != "" {
		opts.Registry = metrics.NewRegistry()
		opts.Window = metrics.NewRPCWindow()
		if mode == "offload" {
			tracer = trace.New(trace.Config{})
			tracer.Enable()
			opts.Tracer = tracer
		}
	}
	var stack *dpurpc.Stack
	var err error
	switch mode {
	case "offload":
		stack, err = dpurpc.NewOffloadedStack(schema, emptyImpls(schema), opts)
	case "baseline":
		stack, err = dpurpc.NewBaselineStack(schema, emptyImpls(schema), opts)
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}
	if err != nil {
		fatal(err)
	}
	defer stack.Close()
	if debugAddr != "" {
		// /anatomy footer: the live copied-vs-referenced payload split of the
		// deserialization stage (the byte movement SG framing removes).
		var anatomyExtra func(w io.Writer)
		if d := stack.Deployment(); d != nil {
			anatomyExtra = func(w io.Writer) {
				var copied, reffed, reqs uint64
				for _, dpuSrv := range d.DPUs {
					st := dpuSrv.Stats()
					copied += st.Deser.CopyBytes
					reffed += st.Deser.RefBytes
					reqs += st.Requests
				}
				if reqs > 0 {
					fmt.Fprintf(w, "payload bytes/req (sg_min=%d): copied=%.1f referenced=%.1f\n",
						sgMin, float64(copied)/float64(reqs), float64(reffed)/float64(reqs))
				}
				// Response-cache hit rate: hits never appear in the stage
				// table (they skip every stage), so without this row
				// /anatomy would silently describe only the misses.
				if d.Cache != nil {
					var hits, misses uint64
					for _, dpuSrv := range d.DPUs {
						st := dpuSrv.Stats()
						hits += st.CacheHits
						misses += st.CacheMisses
					}
					if probes := hits + misses; probes > 0 {
						fmt.Fprintf(w, "rpc cache: hit-rate=%.3f (%d hits / %d probes), resident=%d entries %d bytes\n",
							float64(hits)/float64(probes), hits, probes,
							d.Cache.Len(), d.Cache.Bytes())
					}
				}
			}
		}
		// Resource gauges: poll the per-connection occupancy numbers (arena
		// bytes, queue depths, credits) at a low rate into /gauges series and
		// /metrics mirrors. Only the offloaded stack has rpcrdma connections.
		var smp *metrics.Sampler
		if stack.Deployment() != nil {
			smp = metrics.NewSampler(100*time.Millisecond, 256, opts.Registry)
			stack.RegisterGauges(smp)
			smp.Start()
			defer smp.Stop()
		}
		dbg, err := trace.ListenDebug(debugAddr, trace.NewDebugMuxOpts(trace.DebugOptions{
			Registry:     opts.Registry,
			Tracer:       tracer,
			AnatomyExtra: anatomyExtra,
			Window:       stack.Window(),
			Sampler:      smp,
			Pprof:        pprofEnabled,
		}))
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		endpoints := "/metrics /trace /anatomy /tail /healthz"
		if smp != nil {
			endpoints += " /gauges"
		}
		if pprofEnabled {
			endpoints += " /debug/pprof/"
		}
		fmt.Printf("xrpcload: telemetry on http://%s (%s)\n", dbg.Addr(), endpoints)
	}
	bound, err := stack.ListenAndServe(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("xrpcload: %s server on %s (benchpb.Bench, empty business logic)\n", mode, bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("xrpcload: shutting down")
}

func runClient(addr, scenarioName string, n, pipeline, conns, payloadSize int) {
	env := workload.NewEnv()
	var methodID uint16
	var gen func(rng *mt19937.Source) []byte
	switch scenarioName {
	case "small":
		methodID = workload.MethodSmall
		gen = func(rng *mt19937.Source) []byte { return env.GenSmall(rng).Marshal(nil) }
	case "ints":
		methodID = workload.MethodInts
		gen = func(rng *mt19937.Source) []byte { return env.GenIntsFig8(rng).Marshal(nil) }
	case "chars":
		methodID = workload.MethodChars
		gen = func(rng *mt19937.Source) []byte { return env.GenChars(rng, workload.CharsCount).Marshal(nil) }
	case "blob":
		methodID = workload.MethodEchoBlob
		gen = func(rng *mt19937.Source) []byte { return env.GenBlob(rng, payloadSize).Marshal(nil) }
	default:
		fatal(fmt.Errorf("unknown scenario %q", scenarioName))
	}
	method := xrpc.FullMethodName("benchpb.Bench", env.Service.Methods[methodID].Name)

	// Pre-generate distinct payloads per connection.
	perConn := n / conns
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := mt19937.New(uint32(mt19937.DefaultSeed + c))
			payloads := make([][]byte, 32)
			for i := range payloads {
				payloads[i] = gen(rng)
			}
			client, err := xrpc.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			var mu sync.Mutex
			done := 0
			cond := sync.NewCond(&mu)
			inflight := 0
			for i := 0; i < perConn; i++ {
				mu.Lock()
				for inflight >= pipeline {
					cond.Wait()
				}
				inflight++
				mu.Unlock()
				err := client.Go(method, payloads[i%len(payloads)],
					func(status uint16, _ []byte, err error) {
						mu.Lock()
						inflight--
						done++
						cond.Signal()
						mu.Unlock()
						if err != nil || status != xrpc.StatusOK {
							select {
							case errs <- fmt.Errorf("call failed: status=%d err=%v", status, err):
							default:
							}
						}
					})
				if err != nil {
					errs <- err
					return
				}
				if i%64 == 63 {
					client.Flush()
				}
			}
			client.Flush()
			mu.Lock()
			for done < perConn {
				cond.Wait()
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		fatal(err)
	default:
	}
	total := perConn * conns
	fmt.Printf("xrpcload: %d %s requests over %d conn(s) in %v: %.0f req/s (wall-clock, this machine)\n",
		total, scenarioName, conns, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xrpcload: %v\n", err)
	os.Exit(1)
}
