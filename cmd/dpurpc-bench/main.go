// Command dpurpc-bench regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each experiment drives the real datapath and
// reports the modeled testbed metrics next to the paper's published values.
//
// Usage:
//
//	dpurpc-bench -experiment all
//	dpurpc-bench -experiment fig7|fig8a|fig8b|fig8c|table1|blocksweep|busypoll|llc
//	dpurpc-bench -experiment fig8a -requests 50000
//	dpurpc-bench -experiment respscale -host-workers 8 -connections 4
//	dpurpc-bench -experiment batchscale -commit-batch 32
//	dpurpc-bench -experiment payloadscale -payload-size 4194304 -sg-min 1024
//	dpurpc-bench -experiment anatomy -requests 4000 -sg-min 1024
//	dpurpc-bench -experiment tailscale -requests 4000         # windowed p99 -> exemplar anatomies
//	dpurpc-bench -experiment all -debug-addr localhost:9090   # live /metrics, /trace, /tail
//	dpurpc-bench -experiment all -debug-addr localhost:9090 -pprof  # + /debug/pprof/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"dpurpc/internal/arena"
	"dpurpc/internal/dpu"
	"dpurpc/internal/harness"
	"dpurpc/internal/metrics"
	"dpurpc/internal/trace"
	"dpurpc/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all",
		"one of: all, fig7, fig8a, fig8b, fig8c, table1, blocksweep, busypoll, allocator, latency, llc, respscale, batchscale, payloadscale, cachescale, anatomy, chaos, connscale, tailscale, deserspeed")
	requests := flag.Int("requests", 20000, "requests per scenario per mode")
	wallIters := flag.Int("fig7-wall-iters", 200, "wall-clock iterations per Fig. 7 point (0 disables)")
	connections := flag.Int("connections", 1, "host<->DPU connections (one DPU poller each)")
	dpuWorkers := flag.Int("dpu-workers", dpu.Default().DPU.Cores,
		"deserialization workers per DPU poller; >1 enables the reserve/build/commit pipeline (1 = serial datapath)")
	hostWorkers := flag.Int("host-workers", dpu.Default().Host.Cores,
		"host-side duplex workers per connection; >1 runs handlers + response builds in parallel (1 = serial response path); also the top of the respscale sweep")
	commitBatch := flag.Int("commit-batch", 1,
		"commit/doorbell coalescing target on both sides of every connection (1 = flush every pass); >1 also sets the top of the batchscale sweep")
	commitFlushUS := flag.Int("commit-flush-us", 0,
		"coalescing flush timeout in microseconds (0 = the 50us default when batching)")
	payloadSize := flag.Int("payload-size", 0,
		"top of the payloadscale payload sweep in bytes (0 = the 1KiB..4MiB default grid)")
	sgMin := flag.Int("sg-min", 0,
		"scatter-gather payload threshold in bytes; >0 enables SG framing for every experiment and sets the payloadscale on-legs (payloadscale defaults its on-legs to 1KiB)")
	format := flag.String("format", "table", "output format: table | csv | json (csv and json cover fig7, fig8, respscale, and anatomy)")
	debugAddr := flag.String("debug-addr", "",
		"serve live telemetry on this address while the experiments run (/metrics Prometheus text incl. windowed rates/quantiles, /trace Chrome trace JSON for Perfetto, /anatomy, /tail, /healthz); empty disables")
	traceOut := flag.String("trace-out", "",
		"write the spans collected by -debug-addr's tracer as Chrome trace-event JSON to this file on exit")
	tailExemplars := flag.Int("tail-exemplars", 0,
		"how many windowed-histogram exemplars the tailscale experiment resolves to span anatomies (0 = 8)")
	pprofFlag := flag.Bool("pprof", false,
		"mount net/http/pprof profiles under /debug/pprof/ on the -debug-addr mux")
	flag.Parse()

	opts := harness.DefaultOptions()
	opts.Requests = *requests
	opts.Connections = *connections
	opts.DPUWorkers = *dpuWorkers
	opts.HostWorkers = *hostWorkers
	opts.CommitBatch = *commitBatch
	opts.CommitFlushTimeout = time.Duration(*commitFlushUS) * time.Microsecond
	opts.SGPayloadMin = *sgMin
	opts.TailExemplars = *tailExemplars
	csv := *format == "csv"
	jsonOut := *format == "json"

	var tracer *trace.Tracer
	if *debugAddr != "" || *traceOut != "" {
		opts.Registry = metrics.NewRegistry()
		tracer = trace.New(trace.Config{})
		tracer.Enable()
		opts.Tracer = tracer
	}
	if *debugAddr != "" {
		opts.Window = metrics.NewRPCWindow()
		srv, err := trace.ListenDebug(*debugAddr, trace.NewDebugMuxOpts(trace.DebugOptions{
			Registry: opts.Registry,
			Tracer:   tracer,
			Window:   opts.Window,
			Pprof:    *pprofFlag,
		}))
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		endpoints := "/metrics /trace /anatomy /tail /healthz"
		if *pprofFlag {
			endpoints += " /debug/pprof/"
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s (%s)\n", srv.Addr(), endpoints)
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := trace.WriteChrome(f, tracer.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error { return printTable1(opts) })
	run("fig7", func() error {
		if jsonOut {
			return printFig7JSON(opts, *wallIters)
		}
		if csv {
			return printFig7CSV(opts, *wallIters)
		}
		return printFig7(opts, *wallIters)
	})

	var fig8 []harness.Fig8Row
	needFig8 := *experiment == "all" || strings.HasPrefix(*experiment, "fig8")
	if needFig8 {
		var err error
		fig8, err = harness.RunFig8(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig8: %v\n", err)
			os.Exit(1)
		}
	}
	if jsonOut && needFig8 {
		run("fig8a", func() error { return printFig8JSON(fig8) })
		run("fig8b", func() error { return nil })
		run("fig8c", func() error { return nil })
	} else if csv && needFig8 {
		run("fig8a", func() error { return printFig8CSV(fig8) })
		run("fig8b", func() error { return nil })
		run("fig8c", func() error { return nil })
	} else {
		run("fig8a", func() error { return printFig8a(fig8) })
		run("fig8b", func() error { return printFig8b(fig8) })
		run("fig8c", func() error { return printFig8c(opts, fig8) })
	}
	run("respscale", func() error {
		workers := doublingSweep(*hostWorkers)
		conns := doublingSweep(*connections)
		rows, err := harness.ResponseScalingGrid(opts, conns, workers)
		if err != nil {
			return err
		}
		if jsonOut {
			return printRespScaleJSON(rows)
		}
		if csv {
			return printRespScaleCSV(rows)
		}
		return printRespScale(rows)
	})
	run("batchscale", func() error {
		batches := harness.DefaultCommitBatches()
		if *commitBatch > 1 {
			batches = doublingSweep(*commitBatch)
		}
		rows, err := harness.BatchScale(opts, batches)
		if err != nil {
			return err
		}
		if jsonOut {
			return printBatchScaleJSON(rows)
		}
		if csv {
			return printBatchScaleCSV(rows)
		}
		return printBatchScale(rows)
	})
	run("payloadscale", func() error {
		sizes := harness.DefaultPayloadSizes()
		if *payloadSize > 0 {
			sizes = quadruplingSizes(*payloadSize)
		}
		rows, err := harness.PayloadScale(opts, sizes)
		if err != nil {
			return err
		}
		if jsonOut {
			return printPayloadScaleJSON(rows)
		}
		if csv {
			return printPayloadScaleCSV(rows)
		}
		return printPayloadScale(rows)
	})
	run("cachescale", func() error {
		rows, err := harness.CacheScale(opts, harness.DefaultCacheSkews(), harness.DefaultCacheEntries())
		if err != nil {
			return err
		}
		if jsonOut {
			return printCacheScaleJSON(rows)
		}
		if csv {
			return printCacheScaleCSV(rows)
		}
		return printCacheScale(rows)
	})
	run("anatomy", func() error {
		rep, err := harness.RunAnatomy(opts)
		if err != nil {
			return err
		}
		if jsonOut {
			return printAnatomyJSON(rep)
		}
		if csv {
			return printAnatomyCSV(rep)
		}
		return printAnatomy(rep)
	})
	run("chaos", func() error {
		rows, err := harness.RunChaos(opts, harness.DefaultChaosRates())
		if err != nil {
			return err
		}
		if jsonOut {
			return printChaosJSON(rows)
		}
		if csv {
			return printChaosCSV(rows)
		}
		return printChaos(rows)
	})
	run("connscale", func() error {
		rows, err := harness.RunConnScale(opts, harness.DefaultConnScaleCounts())
		if err != nil {
			return err
		}
		overload, err := harness.RunOverload(opts)
		if err != nil {
			return err
		}
		if jsonOut {
			return printConnScaleJSON(rows, overload)
		}
		if csv {
			return printConnScaleCSV(rows, overload)
		}
		return printConnScale(rows, overload)
	})
	run("tailscale", func() error {
		rep, err := harness.RunTailscale(opts)
		if err != nil {
			return err
		}
		if jsonOut {
			return printTailscaleJSON(rep)
		}
		if csv {
			return printTailscaleCSV(rep)
		}
		return printTailscale(rep)
	})
	run("deserspeed", func() error {
		rows, err := harness.DeserSpeed(opts, harness.DefaultDeserSpeedIters)
		if err != nil {
			return err
		}
		if jsonOut {
			return printDeserSpeedJSON(rows)
		}
		if csv {
			return printDeserSpeedCSV(rows)
		}
		return printDeserSpeed(rows)
	})
	run("blocksweep", func() error { return printBlockSweep(opts) })
	run("busypoll", func() error { return printPollModes(opts) })
	run("allocator", func() error { return printAllocatorAblation() })
	run("latency", func() error { return printLatency(opts) })
	run("llc", func() error { return printLLC(fig8) })
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// printFig7CSV emits the Fig. 7 sweep as CSV for plotting pipelines.
func printFig7CSV(opts harness.Options, wallIters int) error {
	rows, err := harness.Fig7(opts, harness.DefaultFig7Counts(), wallIters)
	if err != nil {
		return err
	}
	fmt.Println("series,elements,wire_bytes,cpu_ns,dpu_ns,ratio,wall_ns")
	for _, r := range rows {
		fmt.Printf("%s,%d,%d,%.2f,%.2f,%.3f,%.1f\n",
			r.Kind, r.Count, r.WireBytes, r.CPUNS, r.DPUNS, r.Ratio, r.WallNS)
	}
	return nil
}

// printFig8CSV emits all three Fig. 8 panels as one CSV.
func printFig8CSV(rows []harness.Fig8Row) error {
	fmt.Println("scenario,mode,rps,pcie_gbps,host_cores,dpu_cores,bottleneck,wire_bytes_per_req,pcie_bytes_per_req,min_credits,dpu_workers,wall_rps")
	for _, r := range rows {
		fmt.Printf("%s,%s,%.0f,%.2f,%.3f,%.3f,%s,%.1f,%.1f,%d,%d,%.0f\n",
			r.Scenario, r.Mode, r.Result.RPS, r.Result.BandwidthGbps,
			r.Result.HostCores, r.Result.DPUCores, r.Result.Bottleneck,
			r.WireBytesPerReq, r.PCIeBytesPerReq, r.MinCredits, r.DPUWorkers, r.WallRPS)
	}
	return nil
}

// printFig8JSON emits the Fig. 8 rows as a JSON array for downstream
// tooling (one object per bar, modeled Result plus wall-clock fields).
func printFig8JSON(rows []harness.Fig8Row) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// printFig7JSON emits the Fig. 7 sweep as a JSON array (one object per
// point: modeled CPU/DPU times plus the wall-clock measurement).
func printFig7JSON(opts harness.Options, wallIters int) error {
	rows, err := harness.Fig7(opts, harness.DefaultFig7Counts(), wallIters)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// quadruplingSizes builds the payload sweep 1 KiB, 4 KiB, 16 KiB, ...
// capped at max.
func quadruplingSizes(max int) []int {
	if max < 1<<10 {
		max = 1 << 10
	}
	var out []int
	for s := 1 << 10; s < max; s *= 4 {
		out = append(out, s)
	}
	return append(out, max)
}

func printPayloadScale(rows []harness.PayloadScaleRow) error {
	fmt.Println("== Scatter-gather payload sweep (EchoBlob workload, bytes payloads) ==")
	fmt.Println("   (sg_min=0 copies every payload byte through the object arena; sg_min>0")
	fmt.Println("    places payloads >= sg_min once into descriptor-framed segments and the")
	fmt.Println("    object references them by offset — copied B/req collapses, goodput is")
	fmt.Println("    the deserializer-limited payload rate under the DPU cost model)")
	w := tw()
	fmt.Fprintln(w, "payload\tworkers\tsg min\tRPS\tcopied B/req\tref B/req\tsg msgs/req\tdeser MB/s\twall req/s (this machine)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.0f\t%.0f\t%.2f\t%.0f\t%.3g\n",
			fmtBytes(r.PayloadBytes), r.DPUWorkers, r.SGPayloadMin, r.Result.RPS,
			r.CopiedBytesPerReq, r.RefBytesPerReq, r.SGMsgsPerReq,
			r.DeserGoodputMBps, r.WallRPS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

// fmtBytes renders a payload size compactly (1 KiB, 4 MiB, ...).
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

func printPayloadScaleCSV(rows []harness.PayloadScaleRow) error {
	fmt.Println("payload_bytes,dpu_workers,sg_min,requests,rps,pcie_gbps,host_cores,dpu_cores,bottleneck,copied_bytes_per_req,ref_bytes_per_req,sg_msgs_per_req,deser_goodput_mbps,wall_rps")
	for _, r := range rows {
		fmt.Printf("%d,%d,%d,%d,%.0f,%.2f,%.3f,%.3f,%s,%.1f,%.1f,%.3f,%.1f,%.0f\n",
			r.PayloadBytes, r.DPUWorkers, r.SGPayloadMin, r.Requests,
			r.Result.RPS, r.Result.BandwidthGbps, r.Result.HostCores,
			r.Result.DPUCores, r.Result.Bottleneck, r.CopiedBytesPerReq,
			r.RefBytesPerReq, r.SGMsgsPerReq, r.DeserGoodputMBps, r.WallRPS)
	}
	return nil
}

func printPayloadScaleJSON(rows []harness.PayloadScaleRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// doublingSweep builds the sweep 1, 2, 4, ... capped at max.
func doublingSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

func printRespScale(rows []harness.RespScaleRow) error {
	fmt.Println("== Response-direction scaling (duplex pipeline, Echo workload) ==")
	fmt.Println("   (host build workers = DPU serialization workers = width; modeled")
	fmt.Println("    core spread capped at conns x width on both sides)")
	w := tw()
	fmt.Fprintln(w, "conns\tworkers\tRPS\tbottleneck\thost cores\tDPU cores\tresp B/req\tdeser util\tserial util\twall req/s (this machine)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.3g\t%s\t%.2f\t%.2f\t%.0f\t%.0f%%\t%.0f%%\t%.3g\n",
			r.Connections, r.Workers, r.Result.RPS, r.Result.Bottleneck,
			r.Result.HostCores, r.Result.DPUCores, r.RespBytesPerReq,
			100*r.DPUUtilization, 100*r.RespUtilization, r.WallRPS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printRespScaleCSV(rows []harness.RespScaleRow) error {
	fmt.Println("connections,workers,rps,pcie_gbps,host_cores,dpu_cores,bottleneck,resp_bytes_per_req,dpu_utilization,resp_utilization,wall_rps")
	for _, r := range rows {
		fmt.Printf("%d,%d,%.0f,%.2f,%.3f,%.3f,%s,%.1f,%.3f,%.3f,%.0f\n",
			r.Connections, r.Workers, r.Result.RPS, r.Result.BandwidthGbps,
			r.Result.HostCores, r.Result.DPUCores, r.Result.Bottleneck,
			r.RespBytesPerReq, r.DPUUtilization, r.RespUtilization, r.WallRPS)
	}
	return nil
}

func printBatchScale(rows []harness.BatchScaleRow) error {
	fmt.Println("== Commit-coalescing sweep (goodput vs batch size x message size) ==")
	fmt.Println("   (one doorbell per sealed block; up to CommitBatch messages share it")
	fmt.Println("    unless the block fills first, so Small amortizes the doorbell while")
	fmt.Println("    Chars seals full regardless; flush columns say why blocks sealed)")
	w := tw()
	fmt.Fprintln(w, "scenario\tbatch\tRPS\tmsgs/block\tdoorbells/req\tfull\tbatch\ttimer\texplicit\twall req/s (this machine)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.3g\t%.1f\t%.2f\t%d\t%d\t%d\t%d\t%.3g\n",
			r.Scenario, r.CommitBatch, r.Result.RPS, r.MsgsPerBlock,
			r.DoorbellsPerReq, r.FlushFull, r.FlushBatch, r.FlushTimer,
			r.FlushExplicit, r.WallRPS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printBatchScaleCSV(rows []harness.BatchScaleRow) error {
	fmt.Println("scenario,commit_batch,rps,pcie_gbps,host_cores,dpu_cores,bottleneck,msgs_per_block,doorbells_per_req,flush_full,flush_batch,flush_timer,flush_explicit,wall_rps")
	for _, r := range rows {
		fmt.Printf("%s,%d,%.0f,%.2f,%.3f,%.3f,%s,%.2f,%.3f,%d,%d,%d,%d,%.0f\n",
			r.Scenario, r.CommitBatch, r.Result.RPS, r.Result.BandwidthGbps,
			r.Result.HostCores, r.Result.DPUCores, r.Result.Bottleneck,
			r.MsgsPerBlock, r.DoorbellsPerReq, r.FlushFull, r.FlushBatch,
			r.FlushTimer, r.FlushExplicit, r.WallRPS)
	}
	return nil
}

func printBatchScaleJSON(rows []harness.BatchScaleRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func printRespScaleJSON(rows []harness.RespScaleRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func printCacheScale(rows []harness.CacheScaleRow) error {
	fmt.Println("== Response-cache sweep (zipf skew x capacity, Ints workload) ==")
	fmt.Println("   (steady-state window after warmup; entries=0 rows are the uncached")
	fmt.Println("    reference per skew — hits skip deserialization AND the host, so")
	fmt.Println("    host ns/req collapses toward (1 - hit rate) of the reference)")
	w := tw()
	fmt.Fprintln(w, "skew\tentries\thit rate\tresident\tRPS\thost ns/req\tDPU ns/req\thost reduction\twall req/s (this machine)")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%d\t%.3f\t%d\t%.3g\t%.0f\t%.0f\t%.2fx\t%.3g\n",
			r.Skew, r.CacheEntries, r.HitRate, r.ResidentEntries,
			r.Result.RPS, r.HostNSPerReq, r.DPUNSPerReq, r.HostReduction, r.WallRPS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printCacheScaleCSV(rows []harness.CacheScaleRow) error {
	fmt.Println("scenario,skew,keys,cache_entries,hit_rate,cache_hits,cache_misses,resident_entries,resident_bytes,rps,pcie_gbps,host_cores,dpu_cores,bottleneck,host_ns_per_req,dpu_ns_per_req,host_reduction,wall_rps")
	for _, r := range rows {
		fmt.Printf("%s,%.2f,%d,%d,%.4f,%d,%d,%d,%d,%.0f,%.2f,%.3f,%.3f,%s,%.1f,%.1f,%.3f,%.0f\n",
			r.Scenario, r.Skew, r.Keys, r.CacheEntries, r.HitRate,
			r.CacheHits, r.CacheMisses, r.ResidentEntries, r.ResidentBytes,
			r.Result.RPS, r.Result.BandwidthGbps, r.Result.HostCores,
			r.Result.DPUCores, r.Result.Bottleneck,
			r.HostNSPerReq, r.DPUNSPerReq, r.HostReduction, r.WallRPS)
	}
	return nil
}

func printCacheScaleJSON(rows []harness.CacheScaleRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func printAnatomy(rep *harness.AnatomyReport) error {
	fmt.Println("== Latency anatomy (Echo workload, every request traced) ==")
	fmt.Println("   (stage rows partition each request's end-to-end window exactly:")
	fmt.Println("    wait:X is the idle time directly before stage X, so the stage")
	fmt.Println("    means sum to the e2e mean identically)")
	for _, m := range rep.Modes {
		fmt.Printf("-- %s datapath (workers=%d, traced %d/%d, wall %.3g req/s) --\n",
			m.Mode, m.Workers, m.Traced, m.Requests, m.WallRPS)
		w := tw()
		fmt.Fprintln(w, "stage\tcount\tp50 us\tp90 us\tp99 us\tmean us\tshare")
		for _, s := range m.Stages {
			fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f%%\n",
				s.Stage, s.Count, s.P50US, s.P90US, s.P99US, s.MeanUS, 100*s.Share)
		}
		fmt.Fprintf(w, "e2e\t%d\t%.1f\t%.1f\t%.1f\t%.2f\t%.0f%%\n",
			m.E2E.Count, m.E2E.P50US, m.E2E.P90US, m.E2E.P99US, m.E2E.MeanUS, 100*m.E2E.Share)
		w.Flush()
		fmt.Printf("   stage-sum mean %.2f us vs e2e mean %.2f us\n",
			m.StageSumMeanUS, m.E2E.MeanUS)
		fmt.Printf("   doorbells/req %.2f (sealed: full %d, batch %d, timer %d, explicit %d; commit-batch %d)\n",
			m.DoorbellsPerReq, m.FlushFull, m.FlushBatch, m.FlushTimer,
			m.FlushExplicit, m.CommitBatch)
		fmt.Printf("   payload bytes/req: copied %.0f, referenced %.0f (sg-min %d)\n\n",
			m.CopiedBytesPerReq, m.RefBytesPerReq, m.SGPayloadMin)
	}
	return nil
}

func printAnatomyCSV(rep *harness.AnatomyReport) error {
	fmt.Println("mode,workers,stage,count,p50_us,p90_us,p99_us,mean_us,share")
	row := func(mode string, workers int, s harness.AnatomyStage) {
		fmt.Printf("%s,%d,%s,%d,%.2f,%.2f,%.2f,%.3f,%.4f\n",
			mode, workers, s.Stage, s.Count, s.P50US, s.P90US, s.P99US, s.MeanUS, s.Share)
	}
	for _, m := range rep.Modes {
		for _, s := range m.Stages {
			row(m.Mode, m.Workers, s)
		}
		e2e := m.E2E
		e2e.Stage = "e2e"
		row(m.Mode, m.Workers, e2e)
	}
	return nil
}

func printAnatomyJSON(rep *harness.AnatomyReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printTable1(opts harness.Options) error {
	fmt.Println("== Table I: environment and configuration parameters ==")
	w := tw()
	fmt.Fprintln(w, "Parameter\tClient (DPU)\tServer (host)")
	for _, r := range harness.TableI(opts) {
		fmt.Fprintf(w, "%s\t%s\t%s\n", r.Parameter, r.Client, r.Server)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printFig7(opts harness.Options, wallIters int) error {
	fmt.Println("== Fig. 7: time to deserialize a single message vs element count ==")
	fmt.Println("   (modeled single-core times; paper anchors: int tail 2.75 ns/elem,")
	fmt.Println("    char tail 42.5 ns/KiB, DPU/CPU ratios 1.89x int / 2.51x char)")
	rows, err := harness.Fig7(opts, harness.DefaultFig7Counts(), wallIters)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "series\telements\twire B\tCPU ns\tDPU ns\tDPU/CPU\twall ns (this machine)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%.2fx\t%.1f\n",
			r.Kind, r.Count, r.WireBytes, r.CPUNS, r.DPUNS, r.Ratio, r.WallNS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printFig8a(rows []harness.Fig8Row) error {
	fmt.Println("== Fig. 8a: average requests per second ==")
	fmt.Println("   (paper: offload matches the baseline; Small reaches ~9e7 RPS)")
	w := tw()
	fmt.Fprintln(w, "scenario\tmode\tRPS\tbottleneck\tmsgs/block")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3g\t%s\t%.1f\n",
			r.Scenario, r.Mode, r.Result.RPS, r.Result.Bottleneck, r.ReqMsgsPerBlock)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printFig8b(rows []harness.Fig8Row) error {
	fmt.Println("== Fig. 8b: average PCIe bandwidth ==")
	fmt.Println("   (paper: offload costs more bytes — deserialized objects are bigger;")
	fmt.Println("    x8000 Chars reaches ~180 Gb/s in both modes)")
	w := tw()
	fmt.Fprintln(w, "scenario\tmode\tGb/s\twire B/req\tPCIe B/req")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.0f\t%.0f\n",
			r.Scenario, r.Mode, r.Result.BandwidthGbps, r.WireBytesPerReq, r.PCIeBytesPerReq)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printFig8c(opts harness.Options, rows []harness.Fig8Row) error {
	fmt.Println("== Fig. 8c: host CPU usage ==")
	fmt.Println("   (paper reductions: 1.8x Small, 8.0x Ints, 1.53x Chars; ~7 cores freed)")
	w := tw()
	fmt.Fprintln(w, "scenario\tmode\thost cores\tDPU cores\tmin credits")
	byScenario := map[workload.Scenario][2]float64{}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%d\n",
			r.Scenario, r.Mode, r.Result.HostCores, r.Result.DPUCores, r.MinCredits)
		v := byScenario[r.Scenario]
		if r.Mode == harness.ModeCPU {
			v[0] = r.Result.HostCores
		} else {
			v[1] = r.Result.HostCores
		}
		byScenario[r.Scenario] = v
	}
	w.Flush()
	for _, s := range workload.Scenarios() {
		v := byScenario[s]
		if v[1] > 0 {
			fmt.Printf("   %s: host CPU reduced %.2fx (%.2f -> %.2f cores, %.1f freed)\n",
				s, v[0]/v[1], v[0], v[1], v[0]-v[1])
		}
	}
	fmt.Println()
	return nil
}

func printChaos(rows []harness.ChaosRow) error {
	fmt.Println("== Chaos sweep (fault injection + failure recovery; beyond the paper) ==")
	fmt.Println("   (Echo workload over the full offloaded stack; every call resolves")
	fmt.Println("    OK after transparent/client retries or with a typed status; each")
	fmt.Println("    timeout or connection break dumps the flight recorder's black box)")
	w := tw()
	fmt.Fprintln(w, "fault rate\trequests\tok\ttyped fail\tretries\tin-place retries\ttimed out\tconns lost\tflight dumps\tgoodput req/s\tp50 us\tp99 us")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f%%\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3g\t%.0f\t%.0f\n",
			100*r.FaultRate, r.Requests, r.Succeeded, r.Failed, r.Retries,
			r.SendFaultRetries, r.TimedOut, r.ConnsBroken, r.FlightDumps,
			r.GoodputRPS, r.P50US, r.P99US)
	}
	w.Flush()
	for _, r := range rows {
		if r.DumpSample == "" {
			continue
		}
		fmt.Printf("   black-box sample at %.0f%% faults (first of %d dumps):\n",
			100*r.FaultRate, r.FlightDumps)
		for _, line := range strings.Split(strings.TrimRight(r.DumpSample, "\n"), "\n") {
			fmt.Println("   " + line)
		}
		break
	}
	fmt.Println()
	return nil
}

func printChaosCSV(rows []harness.ChaosRow) error {
	fmt.Println("fault_rate,plan,requests,succeeded,failed,retries,send_fault_retries,timed_out,late_dropped,conns_broken,flight_dumps,goodput_rps,p50_us,p99_us,wall_seconds")
	for _, r := range rows {
		fmt.Printf("%.4f,%q,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%.1f,%.1f,%.3f\n",
			r.FaultRate, r.Plan, r.Requests, r.Succeeded, r.Failed, r.Retries,
			r.SendFaultRetries, r.TimedOut, r.LateDropped, r.ConnsBroken,
			r.FlightDumps, r.GoodputRPS, r.P50US, r.P99US, r.WallSeconds)
	}
	return nil
}

func printChaosJSON(rows []harness.ChaosRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func printConnScale(rows []harness.ConnScaleRow, overload harness.ConnScaleRow) error {
	fmt.Println("== Connection scale-out (reconnect + churn + admission control) ==")
	fmt.Println("   (Echo workload multiplexed over shared poller shards; the churn")
	fmt.Println("    legs kill live connections mid-load — every kill must be absorbed")
	fmt.Println("    by a transparent reconnect, every call resolves exactly once)")
	w := tw()
	fmt.Fprintln(w, "conns\tshards\tchurn\trequests\tok\ttyped fail\tretries\tkills\treconnects\tdead conns\tgoodput req/s\tp50 us\tp99 us")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3g\t%.0f\t%.0f\n",
			r.Conns, r.Shards, r.Churn, r.Requests, r.Succeeded, r.Failed,
			r.Retries, r.Kills, r.Reconnects, r.DeadConns,
			r.GoodputRPS, r.P50US, r.P99US)
	}
	w.Flush()
	fmt.Printf("   overload (admit<=%d, no client retries): %d ok, %d shed typed UNAVAILABLE (DPU %d / host %d) in %.3fs\n",
		overload.AdmitMaxInflight, overload.Succeeded, overload.Failed,
		overload.DPUSheds, overload.HostSheds, overload.WallSeconds)
	fmt.Println()
	return nil
}

func printConnScaleCSV(rows []harness.ConnScaleRow, overload harness.ConnScaleRow) error {
	fmt.Println("conns,shards,churn,requests,succeeded,failed,retries,kills,reconnects,redial_fails,dpu_sheds,host_sheds,admit_max_inflight,dead_conns,goodput_rps,p50_us,p99_us,wall_seconds")
	all := append(append([]harness.ConnScaleRow(nil), rows...), overload)
	for _, r := range all {
		fmt.Printf("%d,%d,%v,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f,%.1f,%.1f,%.3f\n",
			r.Conns, r.Shards, r.Churn, r.Requests, r.Succeeded, r.Failed,
			r.Retries, r.Kills, r.Reconnects, r.RedialFails,
			r.DPUSheds, r.HostSheds, r.AdmitMaxInflight, r.DeadConns,
			r.GoodputRPS, r.P50US, r.P99US, r.WallSeconds)
	}
	return nil
}

func printConnScaleJSON(rows []harness.ConnScaleRow, overload harness.ConnScaleRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Sweep    []harness.ConnScaleRow
		Overload harness.ConnScaleRow
	}{rows, overload})
}

func printTailscale(rep *harness.TailscaleReport) error {
	fmt.Println("== Tail-latency exemplars (windowed histogram -> span anatomy) ==")
	fmt.Println("   (the trailing window's slowest requests, worst first; each links")
	fmt.Println("    through its histogram exemplar's trace ID to the stage-by-stage")
	fmt.Println("    breakdown of that exact request — where anatomy averages over")
	fmt.Println("    every request, tailscale explains the p99 outliers individually)")
	fmt.Printf("window %v: %d req, %.3g req/s, p50 %.0f us  p90 %.0f us  p99 %.0f us  (wall %.2fs, %d/%d exemplars resolved)\n",
		rep.Window, rep.WindowCount, rep.RPS, rep.P50US, rep.P90US, rep.P99US,
		rep.WallSeconds, rep.ResolvedExemplars, len(rep.Exemplars))
	for i, ex := range rep.Exemplars {
		bucket := "+Inf"
		if ex.BucketUS > 0 {
			bucket = fmt.Sprintf("%d us", ex.BucketUS)
		}
		fmt.Printf("-- #%d trace=%d latency=%d us (bucket <= %s) method=%s err=%v --\n",
			i+1, ex.TraceID, ex.LatencyUS, bucket, ex.Method, ex.Err)
		if !ex.Resolved {
			fmt.Println("   (trace no longer retained in the rings)")
			continue
		}
		w := tw()
		fmt.Fprintln(w, "  stage\tus")
		for _, s := range ex.Stages {
			fmt.Fprintf(w, "  %s\t%.1f\n", s.Stage, s.MeanUS)
		}
		w.Flush()
	}
	fmt.Println()
	return nil
}

func printTailscaleCSV(rep *harness.TailscaleReport) error {
	fmt.Println("exemplar,trace_id,latency_us,bucket_us,method,err,resolved,stage,stage_us")
	for i, ex := range rep.Exemplars {
		if len(ex.Stages) == 0 {
			fmt.Printf("%d,%d,%d,%d,%s,%t,%t,,\n",
				i, ex.TraceID, ex.LatencyUS, ex.BucketUS, ex.Method, ex.Err, ex.Resolved)
			continue
		}
		for _, s := range ex.Stages {
			fmt.Printf("%d,%d,%d,%d,%s,%t,%t,%s,%.2f\n",
				i, ex.TraceID, ex.LatencyUS, ex.BucketUS, ex.Method, ex.Err,
				ex.Resolved, s.Stage, s.MeanUS)
		}
	}
	return nil
}

func printTailscaleJSON(rep *harness.TailscaleReport) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printDeserSpeed(rows []harness.DeserSpeedRow) error {
	fmt.Println("== Decode-plan speedup (interpretive measure+decode vs planned scan+fill) ==")
	fmt.Println("   (wall times on this machine; modeled columns price the planned fill's")
	fmt.Println("    note replay at copy cost instead of re-decoding)")
	w := tw()
	fmt.Fprintln(w, "workload\twire B\tinterp ns\tplanned ns\tspeedup\thost model ns (i->p)\tDPU model ns (i->p)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.2fx\t%.0f -> %.0f\t%.0f -> %.0f\n",
			r.Workload, r.WireBytes, r.InterpNS, r.PlannedNS, r.Speedup,
			r.HostInterpNS, r.HostPlannedNS, r.DPUInterpNS, r.DPUPlannedNS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printDeserSpeedCSV(rows []harness.DeserSpeedRow) error {
	fmt.Println("workload,wire_bytes,interp_ns,planned_ns,speedup,host_interp_ns,host_planned_ns,dpu_interp_ns,dpu_planned_ns")
	for _, r := range rows {
		fmt.Printf("%s,%d,%.1f,%.1f,%.3f,%.1f,%.1f,%.1f,%.1f\n",
			r.Workload, r.WireBytes, r.InterpNS, r.PlannedNS, r.Speedup,
			r.HostInterpNS, r.HostPlannedNS, r.DPUInterpNS, r.DPUPlannedNS)
	}
	return nil
}

func printDeserSpeedJSON(rows []harness.DeserSpeedRow) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func printBlockSweep(opts harness.Options) error {
	fmt.Println("== Block-size sweep (Sec. VI-A: optimum around 8 KiB) ==")
	rows, err := harness.BlockSizeSweep(opts, harness.DefaultBlockSizes())
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "block size\tRPS\tmsgs/block")
	best := 0
	for i, r := range rows {
		if r.RPS > rows[best].RPS {
			best = i
		}
		fmt.Fprintf(w, "%d KiB\t%.3g\t%.1f\n", r.BlockSize>>10, r.RPS, r.MsgsPerBlock)
	}
	w.Flush()
	fmt.Printf("   best: %d KiB\n\n", rows[best].BlockSize>>10)
	return nil
}

func printPollModes(opts harness.Options) error {
	fmt.Println("== Poll-mode comparison (Sec. III-C: busy poll ~10% faster, 100% CPU) ==")
	rows, err := harness.PollModes(opts)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mode\tRPS\thost CPU%\tDPU CPU%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3g\t%.0f%%\t%.0f%%\n", r.Mode, r.RPS, r.HostCPUPercent, r.DPUCPUPercent)
	}
	w.Flush()
	if len(rows) == 2 && rows[1].RPS > 0 {
		fmt.Printf("   busy-poll speedup: %.1f%%\n\n", 100*(rows[0].RPS/rows[1].RPS-1))
	}
	return nil
}

// printAllocatorAblation regenerates the Sec. IV-A design comparison.
func printAllocatorAblation() error {
	fmt.Println("== Allocator ablation (Sec. IV-A: dynamic allocation vs ring buffer) ==")
	fmt.Println("   (out-of-order completion trace: 4 KiB blocks, 8 in flight, 64 KiB space)")
	cfg := arena.DefaultTraceConfig(20000)
	dyn, ring, err := arena.CompareOutOfOrder(cfg)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "allocator\tcompleted\tstalls\tstall %")
	fmt.Fprintf(w, "offset-based dynamic (VMA-style)\t%d/%d\t%d\t%.1f%%\n",
		dyn.Completed, cfg.Ops, dyn.Stalls, 100*float64(dyn.Stalls)/float64(cfg.Ops))
	fmt.Fprintf(w, "ring buffer (FIFO frees)\t%d/%d\t%d\t%.1f%%\n",
		ring.Completed, cfg.Ops, ring.Stalls, 100*float64(ring.Stalls)/float64(cfg.Ops))
	w.Flush()
	fmt.Println("   paper: out-of-order completion makes \"dynamic allocation a better")
	fmt.Println("   solution than standard ring buffers\"")
	fmt.Println()
	return nil
}

// printLatency reports wall-clock datapath latency (beyond the paper; the
// library-level instrumentation of Sec. VI applied to latency).
func printLatency(opts harness.Options) error {
	fmt.Println("== Datapath latency (wall-clock, this machine; beyond the paper) ==")
	o := opts
	if o.Requests > 8000 {
		o.Requests = 8000
	}
	w := tw()
	fmt.Fprintln(w, "scenario\trequests\tp50 us\tp90 us\tp99 us\tmean us\twall req/s")
	for _, s := range workload.Scenarios() {
		r, err := harness.MeasureLatency(s, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.1f\t%.3g\n",
			r.Scenario, r.Requests, r.P50US, r.P90US, r.P99US, r.MeanUS, r.WallRPS)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printLLC(rows []harness.Fig8Row) error {
	fmt.Println("== Sec. VI-C5: last-level cache / allocator behaviour ==")
	fmt.Println("   The datapath performs its work exclusively in preallocated, pinned")
	fmt.Println("   buffers managed by the offset-based arena allocator; the system")
	fmt.Println("   allocator is never used per request. See TestDatapathZeroAlloc and")
	fmt.Println("   BenchmarkDatapathAllocs (allocs/op = 0), the Go analogue of the")
	fmt.Println("   paper's ~zero LLC-miss measurement.")
	fmt.Println()
	return nil
}
