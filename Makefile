# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench experiments fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Race-detector pass over the concurrent packages: the DPU deserialization
# pipeline (worker pool + poller), the protocol layer it reserves/commits
# into, and the xRPC transport that feeds it.
race:
	go test -race ./internal/offload/... ./internal/rpcrdma/... ./internal/xrpc/...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/dpurpc-bench -experiment all

# Short fuzz pass over the three untrusted-input surfaces.
fuzz:
	go test -fuzz FuzzDeserialize -fuzztime 30s ./internal/deser
	go test -fuzz FuzzParse -fuzztime 30s ./internal/protodsl
	go test -fuzz FuzzDecode -fuzztime 30s ./internal/adt

clean:
	go clean ./...
