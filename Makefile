# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench experiments fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go vet ./...
	go test ./...

# Race-detector pass over the concurrent packages: the DPU deserialization
# and response-serialization pipelines (worker pools + pollers), the host
# duplex pool, the protocol layer they reserve/commit into, the xRPC
# transport that feeds them, and the generated-bindings byte-identity tests.
race:
	go test -race ./internal/offload/... ./internal/rpcrdma/... ./internal/xrpc/... ./internal/gentest/...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/dpurpc-bench -experiment all

# Short fuzz pass over the three untrusted-input surfaces.
fuzz:
	go test -fuzz FuzzDeserialize -fuzztime 30s ./internal/deser
	go test -fuzz FuzzParse -fuzztime 30s ./internal/protodsl
	go test -fuzz FuzzDecode -fuzztime 30s ./internal/adt

clean:
	go clean ./...
