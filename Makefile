# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test fmt-check race cover bench bench-payload bench-cache bench-check bench-all experiments chaos fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test: fmt-check
	go vet ./...
	go test ./...
	@echo "advisory: quick benchmark comparison against the checked-in snapshots"
	@$(MAKE) --no-print-directory bench-check BENCHTIME=20000x \
		|| echo "bench-check: regressions above are ADVISORY here; run 'make bench-check' for a full-length pass"

# Fail on unformatted files (gofmt prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; fi

# Race-detector pass over the concurrent packages: the DPU deserialization
# and response-serialization pipelines (worker pools + pollers), the host
# duplex pool, the protocol layer they reserve/commit into, the xRPC
# transport that feeds them, the generated-bindings byte-identity tests,
# the datapath span recorder, and the fault-injection layers (per-QP
# delay lines, injector, link staller), plus the windowed-metrics shard
# rotation and the gauge sampler.
race:
	go test -race ./internal/offload/... ./internal/rpcrdma/... ./internal/xrpc/... ./internal/gentest/... ./internal/trace/... ./internal/rdma/... ./internal/fault/... ./internal/fabric/... ./internal/metrics/... ./internal/rpccache/... ./internal/workload/...

# Aggregate coverage over every package, with a summary and an HTML-ready
# profile at cover.out.
cover:
	go test -coverprofile=cover.out -covermode=atomic ./...
	go tool cover -func=cover.out | tail -1

# Decode-path benchmark snapshot: the deser + wire benchmarks (planned vs
# interpretive decode, varint/tag micro-benchmarks) parsed into
# BENCH_deser.json, plus the commit-coalescing echo round trip parsed into
# BENCH_batch.json (ns/op, B/op, allocs/op). Both files are checked in.
# The Payload* scatter-gather benchmarks have their own snapshot (see
# bench-payload below), so the deser selector names its families explicitly.
# BENCH_telemetry.json snapshots the observability hot paths: the windowed
# counter/histogram observe costs and the trace begin/span/finish cycle,
# each with its disabled (nil-receiver) fast path. The disabled paths are
# sub-nanosecond, so bench-check compares them at a loose 50% tolerance —
# the hard gates are the AllocsPerRun==0 pins in the tests themselves.
DESER_BENCH = ^Benchmark(Deserialize|Serialize|Sized|Planned|Varint|Uvarint|Tag)
bench:
	go test -bench '$(DESER_BENCH)' -benchmem -count 1 -run '^$$' ./internal/deser ./internal/wire \
		| go run ./cmd/benchjson -out BENCH_deser.json
	go test -bench 'EchoBatch|EchoRoundTrip' -benchmem -count 1 -run '^$$' ./internal/rpcrdma \
		| go run ./cmd/benchjson -out BENCH_batch.json
	go test -bench 'WindowedMetrics|TraceOverhead' -benchmem -count 1 -run '^$$' ./internal/metrics ./internal/trace \
		| go run ./cmd/benchjson -out BENCH_telemetry.json
	go test -bench 'ConnScale' -benchmem -count 1 -run '^$$' ./internal/harness \
		| go run ./cmd/benchjson -out BENCH_connscale.json

# Scatter-gather payload snapshot: copy-fill vs SG-fill vs segment placement
# at 4KiB..1MiB payloads, parsed into BENCH_payload.json (checked in).
bench-payload:
	go test -bench 'Payload' -benchmem -count 1 -run '^$$' ./internal/deser \
		| go run ./cmd/benchjson -out BENCH_payload.json

# Response-cache snapshot: the zero-alloc hit probe and the zipf-driven
# steady-state hit rate (a custom hit_rate metric), parsed into
# BENCH_cache.json (checked in). bench-check gates the hit rate at its own
# ±5% tolerance via -metric-tolerance, independent of the ns/op tolerance.
bench-cache:
	go test -bench 'BenchmarkCache' -benchmem -count 1 -run '^$$' ./internal/rpccache \
		| go run ./cmd/benchjson -out BENCH_cache.json

# Compare a fresh benchmark run against the checked-in snapshots; fails on
# >10% ns/op regressions. BENCHTIME shortens the pass (e.g. make bench-check
# BENCHTIME=20000x) at the price of noisier numbers.
BENCHTIME ?= 1s
bench-check:
	go test -bench '$(DESER_BENCH)' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/deser ./internal/wire \
		| go run ./cmd/benchjson -compare BENCH_deser.json
	go test -bench 'EchoBatch|EchoRoundTrip' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/rpcrdma \
		| go run ./cmd/benchjson -compare BENCH_batch.json
	go test -bench 'Payload' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/deser \
		| go run ./cmd/benchjson -compare BENCH_payload.json
	go test -bench 'WindowedMetrics|TraceOverhead' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/metrics ./internal/trace \
		| go run ./cmd/benchjson -compare BENCH_telemetry.json -tolerance 0.5
	go test -bench 'ConnScale' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/harness \
		| go run ./cmd/benchjson -compare BENCH_connscale.json -tolerance 0.5
	go test -bench 'BenchmarkCache' -benchmem -count 1 -benchtime $(BENCHTIME) -run '^$$' ./internal/rpccache \
		| go run ./cmd/benchjson -compare BENCH_cache.json -tolerance 0.5 -metric-tolerance hit_rate=0.05

# Full benchmark sweep across every package (nothing written).
bench-all:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/dpurpc-bench -experiment all

# Fault-injection sweep: goodput and latency of the offloaded stack at
# 0/1/5/10% injected fault rates, plus the race-detector chaos soak over
# randomized fault plans and the connection-churn soak (faults x kills,
# exactly-once at every rate). The deterministic-seed fault matrix runs in
# the ordinary `make test` (TestDeterministicFaultMatrix, TestChaosSoak).
chaos:
	go test -race -run 'TestChaosSoak|TestDeterministicFaultMatrix|TestRunChaos|TestChaosChurn' -count=1 -v \
		./internal/offload ./internal/rpcrdma ./internal/harness
	go run ./cmd/dpurpc-bench -experiment chaos

# Short fuzz pass over the three untrusted-input surfaces.
fuzz:
	go test -fuzz FuzzDeserialize -fuzztime 30s ./internal/deser
	go test -fuzz FuzzParse -fuzztime 30s ./internal/protodsl
	go test -fuzz FuzzDecode -fuzztime 30s ./internal/adt

clean:
	go clean ./...
	rm -f cover.out
