// Package dpurpc is a Go implementation of "Protocol Buffer Deserialization
// DPU Offloading in the RPC Datapath" (SC 2024): an RPC stack in which the
// entire RPC server — including protobuf deserialization — runs on a DPU,
// while the application's business logic stays on the host and receives
// ready-built, zero-copy request objects through a shared address space.
//
// The package is a facade over the subsystems in internal/ (see DESIGN.md
// for the full inventory):
//
//   - Schema: proto3 parsing, descriptors, and the Accelerator Description
//     Table (ADT) that makes the DPU format-agnostic;
//   - OffloadedStack: the paper's deployment — an xRPC front end terminated
//     on the (simulated) DPU, RPC-over-RDMA to the host, handlers receiving
//     abi.View objects;
//   - BaselineStack: the conventional deployment used as the evaluation
//     baseline — the host terminates xRPC and deserializes on its own cores;
//   - Client: an xRPC client for either stack.
//
// A minimal offloaded service:
//
//	schema, _ := dpurpc.ParseSchema("greeter.proto", src)
//	stack, _ := dpurpc.NewOffloadedStack(schema, map[string]dpurpc.Impl{
//	    "demo.Greeter": {
//	        "Hello": func(req dpurpc.View) (*dpurpc.Message, uint16) {
//	            out := schema.NewMessage("demo.HelloReply")
//	            out.SetString("text", "hello "+string(req.StrName("name")))
//	            return out, 0
//	        },
//	    },
//	}, dpurpc.StackOptions{})
//	defer stack.Close()
//	addr, _ := stack.ListenAndServe("127.0.0.1:0")
//	c, _ := dpurpc.Dial(addr)
//	resp, _ := c.Call(schema, "demo.Greeter", "Hello", req)
package dpurpc

import (
	"fmt"

	"dpurpc/internal/abi"
	"dpurpc/internal/adt"
	"dpurpc/internal/fault"
	"dpurpc/internal/offload"
	"dpurpc/internal/protodesc"
	"dpurpc/internal/protodsl"
	"dpurpc/internal/protomsg"
	"dpurpc/internal/rpcrdma"
	"dpurpc/internal/xrpc"
)

// Message is a dynamic protobuf message (client-side requests and host-side
// responses).
type Message = protomsg.Message

// View is a zero-copy accessor over a deserialized request object in the
// shared region. Views are valid only during the handler invocation.
type View = abi.View

// Impl maps method names to handlers for one service, as registered on the
// host.
type Impl = offload.Impl

// Config tunes one side of an RPC-over-RDMA connection (Table I defaults
// apply to zero values).
type Config = rpcrdma.Config

// FaultPlan describes a deterministic fault-injection schedule for the
// simulated RDMA fabric (StackOptions.Faults). See internal/fault.
type FaultPlan = fault.Plan

// RetryPolicy governs Client.CallRetry: transparent retries of transient
// failures with exponential backoff and a token-bucket budget.
type RetryPolicy = xrpc.RetryPolicy

// Schema bundles the parsed proto3 types, the registry, and the ADT.
type Schema struct {
	Registry *protodesc.Registry
	Table    *adt.Table
}

// ParseSchema parses proto3 source and builds the ADT for it. filename is
// used in error messages only.
func ParseSchema(filename, source string) (*Schema, error) {
	f, err := protodsl.Parse(filename, source)
	if err != nil {
		return nil, err
	}
	reg := protodesc.NewRegistry()
	if err := reg.Register(f); err != nil {
		return nil, err
	}
	table, err := adt.Build(reg)
	if err != nil {
		return nil, err
	}
	return &Schema{Registry: reg, Table: table}, nil
}

// NewMessage returns an empty dynamic message of the named type.
func (s *Schema) NewMessage(fqName string) *Message {
	desc := s.Registry.Message(fqName)
	if desc == nil {
		panic(fmt.Sprintf("dpurpc: unknown message type %q", fqName))
	}
	return protomsg.New(desc)
}

// HasMessage reports whether the schema defines the named message type.
func (s *Schema) HasMessage(fqName string) bool {
	return s.Registry.Message(fqName) != nil
}

// EncodeADT serializes the Accelerator Description Table — the blob the
// host transmits to the DPU at startup.
func (s *Schema) EncodeADT() []byte { return s.Table.Encode() }

// ParseSchemaSet parses a multi-file proto3 schema: files maps import paths
// to source text, entry names the root file. All reachable types are
// registered and the ADT covers the full set.
func ParseSchemaSet(files map[string]string, entry string) (*Schema, error) {
	f, err := protodsl.ParseSet(files, entry)
	if err != nil {
		return nil, err
	}
	reg := protodesc.NewRegistry()
	if err := reg.Register(f); err != nil {
		return nil, err
	}
	table, err := adt.Build(reg)
	if err != nil {
		return nil, err
	}
	return &Schema{Registry: reg, Table: table}, nil
}
