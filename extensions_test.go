package dpurpc_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dpurpc"
)

// TestStackExtensionsEndToEnd runs the public API with both paper
// extensions enabled: response serialization on the DPU and background
// (worker-pool) handler execution. Client-observable behaviour must match
// the default stack exactly.
func TestStackExtensionsEndToEnd(t *testing.T) {
	schema, err := dpurpc.ParseSchema("greeter.proto", greeterProto)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]dpurpc.StackOptions{
		"default":      {},
		"resp-offload": {OffloadResponseSerialization: true},
		"background":   {BackgroundWorkers: 4},
		"both":         {OffloadResponseSerialization: true, BackgroundWorkers: 4},
	}
	want := map[string]string{}
	for name, opts := range variants {
		stack, err := dpurpc.NewOffloadedStack(schema, greeterImpls(t, schema), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		addr, err := stack.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		client, err := dpurpc.Dial(addr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 10; i++ {
			req := schema.NewMessage("demo.HelloRequest")
			req.SetString("name", fmt.Sprintf("req-%d-%s", i, strings.Repeat("x", i*7)))
			req.SetUint32("times", uint32(i))
			resp, err := client.Call(schema, "demo.Greeter", "Hello", req)
			if err != nil {
				t.Fatalf("%s call %d: %v", name, i, err)
			}
			key := fmt.Sprintf("%d", i)
			got := resp.GetString("text") + fmt.Sprint(resp.Nums("echoes"))
			if prev, ok := want[key]; ok {
				if got != prev {
					t.Errorf("%s call %d diverges: %q vs %q", name, i, got, prev)
				}
			} else {
				want[key] = got
			}
		}
		client.Close()
		stack.Close()
	}
}

// TestBackgroundStackSlowHandlerDoesNotBlock exercises the Sec. III-D
// motivation through the public API: one slow RPC, many fast ones.
func TestBackgroundStackSlowHandlerDoesNotBlock(t *testing.T) {
	schema, err := dpurpc.ParseSchema("slow.proto", `
syntax = "proto3";
package sl;
message Req { bool slow = 1; }
message Rep { bool ok = 1; }
service S { rpc Do (Req) returns (Rep); }
`)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	impls := map[string]dpurpc.Impl{
		"sl.S": {
			"Do": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				if req.BoolName("slow") {
					<-release
				}
				out := schema.NewMessage("sl.Rep")
				out.SetBool("ok", true)
				return out, 0
			},
		},
	}
	stack, err := dpurpc.NewOffloadedStack(schema, impls, dpurpc.StackOptions{BackgroundWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := dpurpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := dpurpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	slowDone := make(chan error, 1)
	go func() {
		req := schema.NewMessage("sl.Req")
		req.SetBool("slow", true)
		_, err := slow.Call(schema, "sl.S", "Do", req)
		slowDone <- err
	}()

	// Fast calls complete while the slow one is held.
	for i := 0; i < 10; i++ {
		req := schema.NewMessage("sl.Req")
		resp, err := fast.Call(schema, "sl.S", "Do", req)
		if err != nil || !resp.Bool("ok") {
			t.Fatalf("fast call %d: %v", i, err)
		}
	}
	select {
	case <-slowDone:
		t.Fatal("slow call finished before release")
	default:
	}
	close(release)
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatalf("slow call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow call never completed")
	}
}
