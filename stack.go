package dpurpc

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"time"

	"dpurpc/internal/metrics"
	"dpurpc/internal/offload"
	"dpurpc/internal/rpccache"
	"dpurpc/internal/rpcrdma"
	"dpurpc/internal/trace"
	"dpurpc/internal/xrpc"
)

// StackOptions configure a deployment.
type StackOptions struct {
	// Connections is the number of host<->DPU RPC-over-RDMA connections
	// (one DPU poller each, Sec. III-C). Default 1.
	Connections int
	// ClientConfig / ServerConfig tune the protocol endpoints; zero values
	// take the Table I defaults (8 KiB blocks, 256 credits, 3/16 MiB
	// buffers).
	ClientConfig Config
	ServerConfig Config
	// OffloadResponseSerialization also moves response serialization to
	// the DPU (the symmetric extension of Sec. III-A): host handlers still
	// return *Message, but the stack ships response objects through the
	// shared region and the DPU produces the wire bytes.
	OffloadResponseSerialization bool
	// SGPayloadMin > 0 enables the zero-copy scatter-gather payload path:
	// singular string/bytes payloads of at least this many wire bytes are
	// carried in dedicated 8-aligned payload segments of the shared region,
	// referenced by offset from the built object and described by an SG
	// table at the front of the message — the deserializer stops copying
	// bulk bytes through the object arena. Applies to the request direction
	// always and to responses when OffloadResponseSerialization is on.
	// 0 (the default) keeps every payload inline. Offloaded stacks only.
	SGPayloadMin int
	// BackgroundWorkers > 0 runs host handlers on a worker pool instead of
	// the poller thread (Sec. III-D background RPCs) — for long-running
	// handlers that must not stall the datapath. Handlers must then be
	// safe for concurrent invocation.
	BackgroundWorkers int
	// CommitBatch > 1 enables commit/doorbell coalescing on both
	// directions of every connection: blocks seal after accumulating this
	// many messages (or CommitFlushTimeout elapses), so one doorbell
	// carries a whole run. 0 or 1 keeps flush-every-pass behavior.
	CommitBatch int
	// CommitFlushTimeout is the coalescing latency cap paired with
	// CommitBatch (0 = the 50µs default), bounding p99 at low load.
	CommitFlushTimeout time.Duration
	// HostPollers is the number of host-side poller goroutines;
	// connections are distributed round-robin across them (Table I runs 8
	// host threads). Default 1; capped at Connections.
	HostPollers int
	// DPUWorkers > 1 runs the multi-core DPU deserialization pipeline:
	// each DPU poller reserves protocol slots and that many workers
	// measure and build requests in parallel directly into them
	// (reserve → parallel build → commit). 0 or 1 keeps the serial
	// datapath. With the pipeline enabled the stack serves xRPC through
	// the stream interface so response buffers are recycled.
	DPUWorkers int
	// HostWorkers > 1 runs the host-side duplex response pipeline: the
	// host poller admits requests and that many workers run handlers and
	// build response objects in parallel into protocol slots reserved in
	// receive order (the response-direction mirror of DPUWorkers).
	// Supersedes BackgroundWorkers when set. 0 or 1 keeps the serial
	// response path. Handlers must be safe for concurrent invocation.
	HostWorkers int
	// Registry, when non-nil, receives per-method RPC series (requests,
	// errors, request/response bytes, in-flight gauge) recorded at the
	// xRPC admission layer. Expose it live with trace.NewDebugMux.
	Registry *metrics.Registry
	// Window, when non-nil, collects per-request end-to-end latency into
	// sliding-window histograms: /metrics and /anatomy report the trailing
	// window's req/s and p50/p90/p99, and /tail resolves the window's worst
	// requests to full span anatomies (observations are tagged with trace
	// IDs when a Tracer is also configured). Works for both offloaded and
	// baseline stacks; baseline observations carry no trace ID.
	Window *metrics.RPCWindow
	// Tracer, when non-nil, stamps every admitted RPC with a trace ID and
	// records per-stage spans along the whole datapath (DPU measure/build/
	// commit, PCIe doorbells, host dispatch/handler/response build, DPU
	// response serialize and delivery). Offloaded stacks only; the
	// recording cost is bounded and the datapath never blocks on it.
	Tracer *trace.Tracer
	// Faults, when non-nil, injects deterministic faults (error CQEs,
	// drops, delivery delays, CQ overflows) into both RDMA directions of
	// every connection — chaos testing only. Each connection derives its
	// own schedule from the plan seed. Nil keeps the datapath
	// byte-identical to a fault-free build. Offloaded stacks only.
	Faults *FaultPlan
	// RequestTimeout bounds each offloaded request from enqueue on the DPU
	// to its response; expired requests fail with DEADLINE_EXCEEDED
	// instead of hanging. Zero disables deadlines — enable it whenever
	// Faults is set. Offloaded stacks only.
	RequestTimeout time.Duration
	// CacheMethods opts full method names ("/pkg.Service/Method") into the
	// DPU-resident response cache: repeated byte-identical requests are
	// answered from stored response bytes on the DPU — no deserialization,
	// no host round trip. Only list methods whose response depends solely
	// on the request bytes (idempotent, read-mostly); invalidate with
	// Stack.InvalidateMethod when the backing state changes. One cache is
	// shared across all connections and survives reconnects. Offloaded
	// stacks only.
	CacheMethods []string
	// CacheMaxBytes / CacheMaxEntries / CacheTTL bound the response cache
	// (0 = defaults: 8 MiB, unbounded count, no expiry).
	CacheMaxBytes   int
	CacheMaxEntries int
	CacheTTL        time.Duration
}

func (o *StackOptions) fill() {
	if o.Connections == 0 {
		o.Connections = 1
	}
}

// Stack is a running RPC deployment: either offloaded (DPU-terminated) or
// baseline (host-terminated). Both serve the same xRPC protocol, so clients
// need only a different address — exactly the paper's "only configuration
// change" property.
type Stack struct {
	handler xrpc.ServerHandler
	stream  xrpc.StreamHandler // set when the DPU pipeline is enabled
	srv     *xrpc.Server

	mu      sync.Mutex
	stops   []chan struct{}
	pollers sync.WaitGroup // host poller goroutines; waited before deployment.Close
	serving bool
	closed  bool

	// Offloaded-only internals (nil for the baseline).
	deployment *offload.Deployment
	schema     *Schema // method-name resolution for InvalidateMethod

	// Observability (nil unless configured in StackOptions).
	registry *metrics.Registry
	tracer   *trace.Tracer
	window   *metrics.RPCWindow
}

// NewOffloadedStack wires the paper's deployment: ADT handshake, DPU
// middleman, RPC-over-RDMA connections, and the host compatibility layer
// dispatching to impls.
func NewOffloadedStack(schema *Schema, impls map[string]Impl, opts StackOptions) (*Stack, error) {
	opts.fill()
	dcfg := offload.DeployConfig{
		Connections:                  opts.Connections,
		ClientCfg:                    opts.ClientConfig,
		ServerCfg:                    opts.ServerConfig,
		OffloadResponseSerialization: opts.OffloadResponseSerialization,
		SGPayloadMin:                 opts.SGPayloadMin,
		BackgroundWorkers:            opts.BackgroundWorkers,
		CommitBatch:                  opts.CommitBatch,
		CommitFlushTimeout:           opts.CommitFlushTimeout,
		HostPollers:                  opts.HostPollers,
		DPUWorkers:                   opts.DPUWorkers,
		HostWorkers:                  opts.HostWorkers,
		Tracer:                       opts.Tracer,
		Window:                       opts.Window,
		ClientFaults:                 opts.Faults,
		ServerFaults:                 opts.Faults,
		RequestTimeout:               opts.RequestTimeout,
		CacheMethods:                 opts.CacheMethods,
		CacheMaxBytes:                opts.CacheMaxBytes,
		CacheMaxEntries:              opts.CacheMaxEntries,
		CacheTTL:                     opts.CacheTTL,
	}
	if opts.Registry != nil && opts.DPUWorkers > 1 {
		// Pipeline instrumentation rides the registry for free: queue depth,
		// worker busy time, and commit latency, shared across connections.
		dcfg.DPUPipeline = metrics.NewPipelineMetrics(opts.Registry, nil)
		dcfg.DPURespPipeline = metrics.NewResponsePipelineMetrics(opts.Registry, nil)
	}
	d, err := offload.NewDeploymentWith(schema.Table, impls, dcfg)
	if err != nil {
		return nil, err
	}
	if d.Cache != nil && opts.Registry != nil {
		d.Cache.EnableMetrics(opts.Registry, offload.MethodNames(schema.Table))
	}
	st := &Stack{deployment: d, schema: schema, registry: opts.Registry, tracer: opts.Tracer, window: opts.Window}
	// One poller goroutine per DPU connection plus one host server poller.
	for _, dpuSrv := range d.DPUs {
		stop := make(chan struct{})
		st.stops = append(st.stops, stop)
		go dpuSrv.Run(stop)
	}
	for _, poller := range d.Pollers {
		poller := poller
		hostStop := make(chan struct{})
		st.stops = append(st.stops, hostStop)
		st.pollers.Add(1)
		go func() {
			defer st.pollers.Done()
			for {
				select {
				case <-hostStop:
					return
				default:
					// One broken connection (fault injection, peer death)
					// must not stop service for its siblings on this poller.
					if _, err := poller.Progress(); err != nil &&
						!errors.Is(err, rpcrdma.ErrConnBroken) {
						return
					}
				}
			}
		}()
	}
	// The xRPC front end spreads calls across the DPU connections
	// round-robin (the many-to-one-to-one multiplexing of Sec. III-C).
	var next int
	var mu sync.Mutex
	handlers := make([]xrpc.ServerHandler, len(d.DPUs))
	for i, dpuSrv := range d.DPUs {
		handlers[i] = dpuSrv.XRPCHandler()
	}
	st.handler = func(method string, payload []byte) (uint16, []byte) {
		mu.Lock()
		h := handlers[next%len(handlers)]
		next++
		mu.Unlock()
		return h(method, payload)
	}
	if opts.DPUWorkers > 1 {
		// Pipelined servers respond through the stream interface so their
		// pooled response buffers are recycled right after the frame is
		// written (the legacy handler must keep buffers alive).
		streams := make([]xrpc.StreamHandler, len(d.DPUs))
		for i, dpuSrv := range d.DPUs {
			streams[i] = dpuSrv.XRPCStreamHandler()
		}
		st.stream = func(method string, payload []byte, respond xrpc.RespondFunc) {
			mu.Lock()
			h := streams[next%len(streams)]
			next++
			mu.Unlock()
			h(method, payload, respond)
		}
	}
	st.instrument()
	return st, nil
}

// NewBaselineStack wires the evaluation baseline: the host terminates xRPC
// and runs the same arena deserializer on its own cores.
func NewBaselineStack(schema *Schema, impls map[string]Impl, opts StackOptions) (*Stack, error) {
	base, err := offload.NewBaselineServer(schema.Table, impls)
	if err != nil {
		return nil, err
	}
	st := &Stack{handler: base.XRPCHandler(), registry: opts.Registry, window: opts.Window}
	st.instrument()
	return st, nil
}

// instrument wraps the xRPC entry points with per-method metrics when a
// registry is configured, and — on baseline stacks — with windowed latency
// observation (offloaded stacks observe at the DPU poller instead, where the
// trace ID is at hand). Must run before Serve.
func (s *Stack) instrument() {
	if s.registry != nil {
		rm := newRPCMetrics(s.registry)
		s.handler = rm.wrapHandler(s.handler)
		s.stream = rm.wrapStream(s.stream)
	}
	if s.window != nil && s.deployment == nil {
		s.handler = wrapHandlerWindow(s.window, s.handler)
		s.stream = wrapStreamWindow(s.window, s.stream)
	}
}

// Metrics returns the registry configured in StackOptions (nil if none).
func (s *Stack) Metrics() *metrics.Registry { return s.registry }

// Tracer returns the tracer configured in StackOptions (nil if none).
func (s *Stack) Tracer() *trace.Tracer { return s.tracer }

// Window returns the RPC window configured in StackOptions (nil if none).
func (s *Stack) Window() *metrics.RPCWindow { return s.window }

// RegisterGauges registers this stack's live resource sources on a sampler:
// per-connection protocol-endpoint state (arena occupancy, send-queue and
// partial-block depth, outstanding requests, credits) refreshed by each DPU
// poller pass. The sampler polls them at its own low rate; the datapath only
// ever writes a handful of per-pass atomics. No-op for baseline stacks.
func (s *Stack) RegisterGauges(smp *metrics.Sampler) {
	if smp == nil || s.deployment == nil {
		return
	}
	for i, dpu := range s.deployment.DPUs {
		g := dpu.Client().Gauges()
		l := map[string]string{"conn": strconv.Itoa(i)}
		smp.Register("conn_arena_in_use_bytes",
			"Send-arena bytes in use on the DPU client endpoint.", l,
			func() float64 { return float64(g.ArenaInUse.Load()) })
		smp.Register("conn_arena_size_bytes",
			"Send-arena capacity of the DPU client endpoint.", l,
			func() float64 { return float64(g.ArenaSize.Load()) })
		smp.Register("conn_send_queue_depth",
			"Sealed request blocks waiting for credits or IDs.", l,
			func() float64 { return float64(g.SendQueued.Load()) })
		smp.Register("conn_partial_block_msgs",
			"Messages buffered in the unsealed partial block.", l,
			func() float64 { return float64(g.PartialMsgs.Load()) })
		smp.Register("conn_unacked_blocks",
			"Request blocks sent but not yet acknowledged.", l,
			func() float64 { return float64(g.Unacked.Load()) })
		smp.Register("conn_outstanding_requests",
			"Requests in flight on the connection.", l,
			func() float64 { return float64(g.Outstanding.Load()) })
		smp.Register("conn_credits",
			"Send credits remaining on the connection.", l,
			func() float64 { return float64(g.Credits.Load()) })
	}
}

// Cache returns the deployment's shared response cache (nil unless
// StackOptions.CacheMethods was set, and always nil for baseline stacks).
func (s *Stack) Cache() *rpccache.Cache {
	if s.deployment == nil {
		return nil
	}
	return s.deployment.Cache
}

// InvalidateMethod drops every cached response of one method — the explicit
// hook for the application to call when the state backing an idempotent
// method changes. Returns the number of entries dropped (0 when the method
// is unknown, uncached, or the stack has no cache).
func (s *Stack) InvalidateMethod(service, method string) int {
	c := s.Cache()
	if c == nil {
		return 0
	}
	full := xrpc.FullMethodName(service, method)
	for id, name := range offload.MethodNames(s.schema.Table) {
		if name == full {
			return c.InvalidateMethod(uint16(id))
		}
	}
	return 0
}

// Handler exposes the raw xRPC handler (useful for in-process testing
// without TCP).
func (s *Stack) Handler() func(method string, payload []byte) (status uint16, resp []byte) {
	return s.handler
}

// Deployment returns the offloaded deployment internals (nil for the
// baseline) — counters, link statistics, host/DPU stats.
func (s *Stack) Deployment() *offload.Deployment { return s.deployment }

// ListenAndServe starts serving xRPC on addr ("host:0" picks a free port)
// and returns the bound address.
func (s *Stack) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := s.Serve(ln); err != nil {
		ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// Serve starts serving xRPC on an existing listener (non-blocking).
func (s *Stack) Serve(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("dpurpc: stack closed")
	}
	if s.serving {
		return errors.New("dpurpc: already serving")
	}
	s.serving = true
	if s.stream != nil {
		s.srv = xrpc.NewStreamServer(s.stream)
	} else {
		s.srv = xrpc.NewServer(s.handler)
	}
	go s.srv.Serve(ln)
	return nil
}

// Close stops the xRPC front end and the pollers.
func (s *Stack) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.srv != nil {
		s.srv.Close()
	}
	for _, stop := range s.stops {
		close(stop)
	}
	if s.deployment != nil {
		// Host pollers drive the duplex response pipeline; let them drain
		// out before Close tears down the worker pools under them.
		s.pollers.Wait()
		s.deployment.Close() // stops background and duplex worker pools
	}
}

// Client is a typed xRPC client.
type Client struct {
	c *xrpc.Client
}

// Dial connects to a stack's xRPC address.
func Dial(addr string) (*Client, error) {
	c, err := xrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Call performs a unary RPC: req is serialized with the standard protobuf
// encoder, and the response is decoded into a fresh message of the method's
// output type.
func (c *Client) Call(schema *Schema, service, method string, req *Message) (*Message, error) {
	return c.CallTimeout(schema, service, method, req, 0)
}

// SetRetryPolicy installs the retry policy used by CallRetry and resets
// its token-bucket budget to full.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.c.SetRetryPolicy(p) }

// CallRetry is CallTimeout with the installed RetryPolicy applied:
// transient failures (timeouts, DEADLINE_EXCEEDED, UNAVAILABLE) are retried
// with exponential backoff while attempts and the retry budget allow. The
// timeout applies per attempt.
func (c *Client) CallRetry(schema *Schema, service, method string, req *Message, timeout time.Duration) (*Message, error) {
	return c.call(schema, service, method, req, timeout, true)
}

// CallTimeout is Call with a deadline (0 means none).
func (c *Client) CallTimeout(schema *Schema, service, method string, req *Message, timeout time.Duration) (*Message, error) {
	return c.call(schema, service, method, req, timeout, false)
}

func (c *Client) call(schema *Schema, service, method string, req *Message, timeout time.Duration, retry bool) (*Message, error) {
	svc := schema.Registry.Service(service)
	if svc == nil {
		return nil, errors.New("dpurpc: unknown service " + service)
	}
	m := svc.MethodByName(method)
	if m == nil {
		return nil, errors.New("dpurpc: unknown method " + method)
	}
	if req.Descriptor() != m.Input {
		return nil, errors.New("dpurpc: request type mismatch")
	}
	var status uint16
	var payload []byte
	var err error
	if retry {
		status, payload, err = c.c.CallRetry(xrpc.FullMethodName(service, method), req.Marshal(nil), timeout)
	} else {
		status, payload, err = c.c.CallTimeout(xrpc.FullMethodName(service, method), req.Marshal(nil), timeout)
	}
	if err != nil {
		return nil, err
	}
	if status != xrpc.StatusOK {
		return nil, errors.New("dpurpc: rpc failed: " + xrpc.StatusText(status))
	}
	out := schema.NewMessage(m.Output.Name)
	if err := out.Unmarshal(payload); err != nil {
		return nil, err
	}
	return out, nil
}

// Raw exposes the underlying transport client for pipelined asynchronous
// use.
func (c *Client) Raw() *xrpc.Client { return c.c }

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }

// DefaultClientConfig returns the Table I client (DPU) configuration.
func DefaultClientConfig() Config { return rpcrdma.DefaultClientConfig() }

// DefaultServerConfig returns the Table I server (host) configuration.
func DefaultServerConfig() Config { return rpcrdma.DefaultServerConfig() }
