// textserve: the paper's high-copy-cost regime ("data such as requested
// text files for web services", Sec. VI-C1). A document service returns
// multi-kilobyte strings; the example runs the same workload against the
// offloaded and the baseline stacks and prints where the deserialization
// bytes were processed.
package main

import (
	"fmt"
	"log"
	"strings"

	"dpurpc"
	"dpurpc/internal/mt19937"
)

const schema = `
syntax = "proto3";
package docs;

message Document {
  string path = 1;
  string body = 2;
}

message FetchRequest {
  string path = 1;
}

message StoreReply {
  uint32 bytes = 1;
}

service Docs {
  rpc Store (Document) returns (StoreReply);
  rpc Fetch (FetchRequest) returns (Document);
}
`

func docImpls(s *dpurpc.Schema, library map[string]string) map[string]dpurpc.Impl {
	return map[string]dpurpc.Impl{
		"docs.Docs": {
			"Store": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				// The 8000-char body arrives as a zero-copy view into the
				// shared region; the handler copies it only because it
				// outlives the request.
				body := string(req.StrName("body"))
				library[string(req.StrName("path"))] = body
				out := s.NewMessage("docs.StoreReply")
				out.SetUint32("bytes", uint32(len(body)))
				return out, 0
			},
			"Fetch": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				body, ok := library[string(req.StrName("path"))]
				if !ok {
					return nil, 5 // NOT_FOUND
				}
				out := s.NewMessage("docs.Document")
				out.SetString("path", string(req.StrName("path")))
				out.SetString("body", body)
				return out, 0
			},
		},
	}
}

// genDoc builds an ~8000-char document (the x8000 Chars regime).
func genDoc(rng *mt19937.Source) string {
	words := []string{"latency", "bandwidth", "offload", "arena", "varint", "zero-copy", "DPU "}
	var sb strings.Builder
	for sb.Len() < 8000 {
		sb.WriteString(words[rng.Uint32n(uint32(len(words)))])
		sb.WriteByte(' ')
	}
	return sb.String()[:8000]
}

func run(name string, build func(*dpurpc.Schema, map[string]dpurpc.Impl, dpurpc.StackOptions) (*dpurpc.Stack, error)) {
	s, err := dpurpc.ParseSchema("docs.proto", schema)
	if err != nil {
		log.Fatal(err)
	}
	library := map[string]string{}
	stack, err := build(s, docImpls(s, library), dpurpc.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	client, err := dpurpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	rng := mt19937.New(mt19937.DefaultSeed)
	const docs = 50
	var stored, fetched int
	for i := 0; i < docs; i++ {
		doc := s.NewMessage("docs.Document")
		path := fmt.Sprintf("/srv/%02d.txt", i)
		doc.SetString("path", path)
		doc.SetString("body", genDoc(rng))
		reply, err := client.Call(s, "docs.Docs", "Store", doc)
		if err != nil {
			log.Fatal(err)
		}
		stored += int(reply.Uint32("bytes"))
	}
	for i := 0; i < docs; i++ {
		req := s.NewMessage("docs.FetchRequest")
		req.SetString("path", fmt.Sprintf("/srv/%02d.txt", i))
		doc, err := client.Call(s, "docs.Docs", "Fetch", req)
		if err != nil {
			log.Fatal(err)
		}
		fetched += len(doc.GetString("body"))
	}
	fmt.Printf("%-9s stored %d KiB, fetched %d KiB", name, stored>>10, fetched>>10)
	if d := stack.Deployment(); d != nil {
		st := d.DPUs[0].Stats()
		fmt.Printf("  | DPU deserialized %d KiB and UTF-8 validated %d KiB; host deserialized 0",
			st.Deser.CopyBytes>>10, st.Deser.UTF8Bytes>>10)
	} else {
		fmt.Printf("  | host deserialized everything (baseline)")
	}
	fmt.Println()
}

func main() {
	run("offload", dpurpc.NewOffloadedStack)
	run("baseline", dpurpc.NewBaselineStack)
}
