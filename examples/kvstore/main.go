// kvstore: a key-value microservice whose RPC stack runs on the DPU while
// the store itself lives on the host — the paper's target deployment for
// business logic that should keep every host cycle (Sec. I).
//
// The GET/PUT/DELETE handlers receive arena-deserialized request objects
// (dpurpc.View) and never touch the wire format; the example prints the
// datapath statistics proving it.
package main

import (
	"fmt"
	"log"
	"sync"

	"dpurpc"
)

const schema = `
syntax = "proto3";
package kv;

message PutRequest {
  string key = 1;
  bytes value = 2;
}

message GetRequest {
  string key = 1;
}

message DeleteRequest {
  string key = 1;
}

message Entry {
  string key = 1;
  bytes value = 2;
  bool found = 3;
}

message StatsReply {
  uint64 entries = 1;
  uint64 puts = 2;
  uint64 gets = 3;
  uint64 hits = 4;
}

message Empty {}

service Store {
  rpc Put (PutRequest) returns (Empty);
  rpc Get (GetRequest) returns (Entry);
  rpc Delete (DeleteRequest) returns (Empty);
  rpc Stats (Empty) returns (StatsReply);
}
`

// store is the host-side business logic: a plain map under a mutex.
type store struct {
	mu         sync.Mutex
	data       map[string][]byte
	puts, gets uint64
	hits       uint64
}

func (st *store) impls(s *dpurpc.Schema) map[string]dpurpc.Impl {
	return map[string]dpurpc.Impl{
		"kv.Store": {
			"Put": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				key := string(req.StrName("key"))
				if key == "" {
					return nil, 3 // INVALID_ARGUMENT
				}
				val := append([]byte(nil), req.StrName("value")...)
				st.mu.Lock()
				st.data[key] = val
				st.puts++
				st.mu.Unlock()
				return nil, 0
			},
			"Get": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				key := string(req.StrName("key"))
				st.mu.Lock()
				val, ok := st.data[key]
				st.gets++
				if ok {
					st.hits++
				}
				st.mu.Unlock()
				out := s.NewMessage("kv.Entry")
				out.SetString("key", key)
				out.SetBool("found", ok)
				if ok {
					out.SetBytes("value", val)
				}
				return out, 0
			},
			"Delete": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				st.mu.Lock()
				delete(st.data, string(req.StrName("key")))
				st.mu.Unlock()
				return nil, 0
			},
			"Stats": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				st.mu.Lock()
				defer st.mu.Unlock()
				out := s.NewMessage("kv.StatsReply")
				out.SetUint64("entries", uint64(len(st.data)))
				out.SetUint64("puts", st.puts)
				out.SetUint64("gets", st.gets)
				out.SetUint64("hits", st.hits)
				return out, 0
			},
		},
	}
}

func main() {
	s, err := dpurpc.ParseSchema("kv.proto", schema)
	if err != nil {
		log.Fatal(err)
	}
	st := &store{data: map[string][]byte{}}
	stack, err := dpurpc.NewOffloadedStack(s, st.impls(s), dpurpc.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kvstore (offloaded) on", addr)

	client, err := dpurpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Drive a small workload.
	for i := 0; i < 100; i++ {
		put := s.NewMessage("kv.PutRequest")
		put.SetString("key", fmt.Sprintf("user:%03d", i))
		put.SetBytes("value", []byte(fmt.Sprintf(`{"id":%d,"plan":"pro"}`, i)))
		if _, err := client.Call(s, "kv.Store", "Put", put); err != nil {
			log.Fatal(err)
		}
	}
	get := s.NewMessage("kv.GetRequest")
	get.SetString("key", "user:042")
	entry, err := client.Call(s, "kv.Store", "Get", get)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET user:042 -> found=%v value=%s\n", entry.Bool("found"), entry.Bytes("value"))

	del := s.NewMessage("kv.DeleteRequest")
	del.SetString("key", "user:042")
	if _, err := client.Call(s, "kv.Store", "Delete", del); err != nil {
		log.Fatal(err)
	}
	entry, _ = client.Call(s, "kv.Store", "Get", get)
	fmt.Printf("GET user:042 after delete -> found=%v\n", entry.Bool("found"))

	statsResp, err := client.Call(s, "kv.Store", "Stats", s.NewMessage("kv.Empty"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d entries, %d puts, %d gets, %d hits\n",
		statsResp.Uint64("entries"), statsResp.Uint64("puts"),
		statsResp.Uint64("gets"), statsResp.Uint64("hits"))

	d := stack.Deployment()
	fmt.Printf("datapath: DPU deserialized %d messages (%d varint bytes, %d copied bytes); "+
		"PCIe moved %d bytes\n",
		d.DPUs[0].Stats().Deser.Messages,
		d.DPUs[0].Stats().Deser.VarintBytes,
		d.DPUs[0].Stats().Deser.CopyBytes,
		d.Link.TotalBytes())
}
