// Quickstart: define a proto3 service, run it with the RPC stack offloaded
// to the (simulated) DPU, and make a call — the host handler receives a
// ready-built, zero-copy request object and never runs a deserializer.
package main

import (
	"fmt"
	"log"

	"dpurpc"
)

const schema = `
syntax = "proto3";
package demo;

message HelloRequest {
  string name = 1;
}

message HelloReply {
  string text = 1;
}

service Greeter {
  rpc Hello (HelloRequest) returns (HelloReply);
}
`

func main() {
	// 1. Parse the schema; this also builds the Accelerator Description
	//    Table that the host transmits to the DPU at startup.
	s, err := dpurpc.ParseSchema("greeter.proto", schema)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Register the business logic. The handler gets a dpurpc.View: a
	//    zero-copy window onto the object the DPU deserialized straight
	//    into the shared host/DPU region.
	impls := map[string]dpurpc.Impl{
		"demo.Greeter": {
			"Hello": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				out := s.NewMessage("demo.HelloReply")
				out.SetString("text", "hello "+string(req.StrName("name")))
				return out, 0
			},
		},
	}

	// 3. Start the offloaded deployment: the DPU terminates client
	//    connections and runs all deserialization; only the handler above
	//    runs on "host" cores.
	stack, err := dpurpc.NewOffloadedStack(s, impls, dpurpc.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offloaded gRPC-style server listening on", addr)

	// 4. Call it like any RPC service.
	client, err := dpurpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	req := s.NewMessage("demo.HelloRequest")
	req.SetString("name", "world")
	resp, err := client.Call(s, "demo.Greeter", "Hello", req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("response:", resp.GetString("text"))

	// 5. Show where the work happened.
	d := stack.Deployment()
	fmt.Printf("DPU deserialized %d message(s); host deserialized 0\n",
		d.DPUs[0].Stats().Deser.Messages)
}
