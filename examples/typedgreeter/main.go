// typedgreeter: the quickstart rebuilt on adtgen's generated typed
// bindings — the workflow the paper's code generators enable ("a simple
// gRPC server with minimal code modifications", Sec. I). Compare with
// examples/quickstart, which uses the dynamic API directly.
//
// Regenerate the bindings with:
//
//	go run ./cmd/adtgen -proto testdata/greeter.proto \
//	    -out examples/typedgreeter/demopb -bindings -package demopb
package main

import (
	"fmt"
	"log"

	"dpurpc"
	"dpurpc/examples/typedgreeter/demopb"
)

// greeter implements demopb.GreeterServer: plain Go against typed,
// zero-copy request views. This is the only code a service author writes.
type greeter struct {
	schema *dpurpc.Schema
}

func (g *greeter) Hello(req demopb.HelloRequestView) (demopb.HelloReply, uint16) {
	out := demopb.NewHelloReply(g.schema)
	out.SetText("hello " + string(req.Name()))
	return out, 0
}

func main() {
	schema, err := demopb.LoadSchema() // embedded source, fingerprint-checked
	if err != nil {
		log.Fatal(err)
	}
	stack, err := dpurpc.NewOffloadedStack(schema,
		demopb.RegisterGreeter(&greeter{schema: schema}), dpurpc.StackOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("typed offloaded server on", addr)

	conn, err := dpurpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client := demopb.GreeterClient{C: conn, S: schema}

	req := demopb.NewHelloRequest(schema)
	if err := req.SetName("typed world"); err != nil {
		log.Fatal(err)
	}
	resp, err := client.Hello(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("response:", resp.Text())
}
