// telemetry: the paper's measurement methodology (Sec. VI) as a running
// service. The RPC-over-RDMA library is instrumented with a Prometheus-style
// client; a monitor samples the counters on a fixed period, computes the
// instant rate of increase from the last two data points, waits until the
// request rate is stable within 1%, and then reports the final metrics —
// exactly how the paper's harness collects its results. The metrics are
// also exposed in the Prometheus text format over HTTP.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"dpurpc"
	"dpurpc/internal/fabric"
	"dpurpc/internal/metrics"
	"dpurpc/internal/mt19937"
	"dpurpc/internal/workload"
	"dpurpc/internal/xrpc"
)

func main() {
	schema, err := dpurpc.ParseSchema("bench.proto", workload.Schema)
	if err != nil {
		log.Fatal(err)
	}
	empty := func(req dpurpc.View) (*dpurpc.Message, uint16) { return nil, 0 }
	// Instrument the RPC-over-RDMA datapath itself (DPU->host->DPU), as the
	// paper does "directly at the library level" (Sec. VI).
	reg := metrics.NewRegistry()
	rdmaLatency := reg.Histogram("rpcrdma_request_latency_us",
		"DPU-side enqueue-to-response latency over the RDMA datapath.", nil,
		[]float64{1, 5, 10, 50, 100, 500, 1000})
	opts := dpurpc.StackOptions{}
	opts.ClientConfig.LatencyObserver = func(ns float64) { rdmaLatency.Observe(ns / 1e3) }
	stack, err := dpurpc.NewOffloadedStack(schema, map[string]dpurpc.Impl{
		"benchpb.Bench": {"CallSmall": empty, "CallInts": empty, "CallChars": empty, "Echo": empty, "EchoBlob": empty},
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	// The Prometheus-style registry also mirrors the library counters.
	d := stack.Deployment()
	requests := reg.Counter("rpc_requests_total", "Requests processed by the host.", map[string]string{"mode": "offload"})
	pcieBytes := reg.Counter("pcie_bytes_total", "Bytes moved over the host-DPU link.", nil)
	rpsGauge := reg.Gauge("rpc_instant_rps", "Instant rate of increase of the request counter.", nil)
	latency := reg.Histogram("rpc_client_latency_us", "Client-observed call latency.", nil,
		[]float64{10, 50, 100, 500, 1000, 5000})

	// Expose /metrics.
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, reg.Render())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(mln)
	defer srv.Close()
	fmt.Printf("service on %s, metrics on http://%s/metrics\n", addr, mln.Addr())

	// Background load: pipelined small-message calls.
	stop := make(chan struct{})
	var sent atomic.Uint64
	go func() {
		client, err := xrpc.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		env := workload.NewEnv()
		rng := mt19937.New(mt19937.DefaultSeed)
		payload := env.GenSmall(rng).Marshal(nil)
		inflight := make(chan struct{}, 256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			inflight <- struct{}{}
			start := time.Now()
			client.Go("/benchpb.Bench/CallSmall", payload, func(status uint16, _ []byte, err error) {
				latency.Observe(float64(time.Since(start).Microseconds()))
				<-inflight
				sent.Add(1)
			})
			client.Flush()
		}
	}()

	// The monitor: sample on a fixed period and wait for the rate to
	// stabilize. The paper samples ~10s windows and requires 1%; this
	// example uses 500ms windows with a 5% tolerance so it finishes in
	// seconds despite OS scheduling noise.
	mon := metrics.NewRateMonitor()
	mon.Tolerance = 0.05
	start := time.Now()
	for i := 0; ; i++ {
		time.Sleep(500 * time.Millisecond)
		hostReqs := d.Host.Stats().Requests
		requests.Set(hostReqs)
		pcieBytes.Set(d.Link.TotalBytes())
		rate := mon.Sample(time.Since(start).Seconds(), hostReqs)
		rpsGauge.Set(rate)
		fmt.Printf("t=%4.1fs requests=%8d instant-rate=%9.0f req/s stable=%v\n",
			time.Since(start).Seconds(), hostReqs, rate, mon.IsStable())
		if mon.IsStable() && mon.Samples() >= 5 {
			break
		}
		if i > 100 {
			log.Fatal("rate never stabilized")
		}
	}
	close(stop)

	fmt.Println("\n--- final metrics (rate stable within 1%) ---")
	fmt.Printf("stable rate:        %.0f req/s (wall-clock, this machine)\n", mon.Rate())
	fmt.Printf("p50 client latency: %v us (TCP + datapath)\n", latency.Quantile(0.5))
	fmt.Printf("p50 rdma datapath:  %v us (library-level instrumentation)\n", rdmaLatency.Quantile(0.5))
	d2h := d.Link.Stats(fabric.DPUToHost)
	h2d := d.Link.Stats(fabric.HostToDPU)
	fmt.Printf("pcie dpu->host:     %d blocks, %d KiB\n", d2h.Transfers, d2h.TotalBytes()>>10)
	fmt.Printf("pcie host->dpu:     %d blocks, %d KiB\n", h2d.Transfers, h2d.TotalBytes()>>10)
	fmt.Printf("dpu deserialized:   %d messages\n", d.DPUs[0].Stats().Deser.Messages)
	fmt.Println("\n--- prometheus exposition ---")
	fmt.Print(reg.Render())
}
