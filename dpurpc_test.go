package dpurpc_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dpurpc"
)

const greeterProto = `
syntax = "proto3";
package demo;

message HelloRequest {
  string name = 1;
  uint32 times = 2;
}

message HelloReply {
  string text = 1;
  repeated uint32 echoes = 2;
}

service Greeter {
  rpc Hello (HelloRequest) returns (HelloReply);
}
`

func greeterImpls(t testing.TB, schema *dpurpc.Schema) map[string]dpurpc.Impl {
	t.Helper()
	return map[string]dpurpc.Impl{
		"demo.Greeter": {
			"Hello": func(req dpurpc.View) (*dpurpc.Message, uint16) {
				out := schema.NewMessage("demo.HelloReply")
				out.SetString("text", "hello "+string(req.StrName("name")))
				for i := uint32(0); i < req.U32Name("times"); i++ {
					out.AppendNum("echoes", uint64(i))
				}
				return out, 0
			},
		},
	}
}

func runStackTest(t *testing.T, newStack func(*dpurpc.Schema, map[string]dpurpc.Impl, dpurpc.StackOptions) (*dpurpc.Stack, error)) {
	t.Helper()
	schema, err := dpurpc.ParseSchema("greeter.proto", greeterProto)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := newStack(schema, greeterImpls(t, schema), dpurpc.StackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := dpurpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	req := schema.NewMessage("demo.HelloRequest")
	req.SetString("name", "world")
	req.SetUint32("times", 3)
	resp, err := client.Call(schema, "demo.Greeter", "Hello", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.GetString("text") != "hello world" {
		t.Errorf("text = %q", resp.GetString("text"))
	}
	if n := resp.Nums("echoes"); len(n) != 3 || n[2] != 2 {
		t.Errorf("echoes = %v", n)
	}

	// Error surfaces: unknown service/method, wrong request type.
	if _, err := client.Call(schema, "demo.Nope", "Hello", req); err == nil {
		t.Error("unknown service accepted")
	}
	if _, err := client.Call(schema, "demo.Greeter", "Nope", req); err == nil {
		t.Error("unknown method accepted")
	}
	wrong := schema.NewMessage("demo.HelloReply")
	if _, err := client.Call(schema, "demo.Greeter", "Hello", wrong); err == nil {
		t.Error("wrong request type accepted")
	}
}

func TestOffloadedStackEndToEnd(t *testing.T) {
	runStackTest(t, dpurpc.NewOffloadedStack)
}

func TestBaselineStackEndToEnd(t *testing.T) {
	runStackTest(t, dpurpc.NewBaselineStack)
}

func TestStacksAreInterchangeable(t *testing.T) {
	// The paper's "only configuration change is the server address": the
	// same client code works against both stacks and observes identical
	// responses.
	schema, err := dpurpc.ParseSchema("greeter.proto", greeterProto)
	if err != nil {
		t.Fatal(err)
	}
	responses := map[string]string{}
	for name, build := range map[string]func(*dpurpc.Schema, map[string]dpurpc.Impl, dpurpc.StackOptions) (*dpurpc.Stack, error){
		"offload":  dpurpc.NewOffloadedStack,
		"baseline": dpurpc.NewBaselineStack,
	} {
		stack, err := build(schema, greeterImpls(t, schema), dpurpc.StackOptions{})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := stack.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		client, err := dpurpc.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		req := schema.NewMessage("demo.HelloRequest")
		req.SetString("name", strings.Repeat("x", 100)) // spilled string
		resp, err := client.Call(schema, "demo.Greeter", "Hello", req)
		if err != nil {
			t.Fatal(err)
		}
		responses[name] = resp.GetString("text")
		client.Close()
		stack.Close()
	}
	if responses["offload"] != responses["baseline"] {
		t.Errorf("stacks diverge: %q vs %q", responses["offload"], responses["baseline"])
	}
}

func TestOffloadedStackMultiConnConcurrentClients(t *testing.T) {
	schema, err := dpurpc.ParseSchema("greeter.proto", greeterProto)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := dpurpc.NewOffloadedStack(schema, greeterImpls(t, schema),
		dpurpc.StackOptions{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	addr, err := stack.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client, err := dpurpc.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 25; i++ {
				req := schema.NewMessage("demo.HelloRequest")
				req.SetString("name", fmt.Sprintf("g%d-%d", g, i))
				resp, err := client.Call(schema, "demo.Greeter", "Hello", req)
				if err != nil {
					errs <- err
					return
				}
				if want := fmt.Sprintf("hello g%d-%d", g, i); resp.GetString("text") != want {
					errs <- fmt.Errorf("got %q want %q", resp.GetString("text"), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSchemaHelpers(t *testing.T) {
	schema, err := dpurpc.ParseSchema("greeter.proto", greeterProto)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.HasMessage("demo.HelloRequest") || schema.HasMessage("demo.Missing") {
		t.Error("HasMessage broken")
	}
	if len(schema.EncodeADT()) == 0 {
		t.Error("EncodeADT empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMessage of unknown type should panic")
		}
	}()
	schema.NewMessage("demo.Missing")
}

func TestParseSchemaErrors(t *testing.T) {
	if _, err := dpurpc.ParseSchema("bad.proto", "not a proto"); err == nil {
		t.Error("invalid schema accepted")
	}
}
