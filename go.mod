module dpurpc

go 1.22
