package dpurpc

import (
	"sync"

	"dpurpc/internal/metrics"
	"dpurpc/internal/trace"
	"dpurpc/internal/xrpc"
)

// rpcMetrics maintains the per-method RPC series of a stack: request and
// error counts, request/response byte volume (all labeled by full method
// name), and an in-flight gauge. Counters are registered lazily on the
// first call of each method and cached, so the steady-state cost per RPC
// is one RLock'd map hit plus a handful of atomic adds.
type rpcMetrics struct {
	reg      *metrics.Registry
	inflight *metrics.Gauge

	mu      sync.RWMutex
	methods map[string]*methodMetrics
}

type methodMetrics struct {
	requests  *metrics.Counter
	errors    *metrics.Counter
	reqBytes  *metrics.Counter
	respBytes *metrics.Counter
}

func newRPCMetrics(reg *metrics.Registry) *rpcMetrics {
	return &rpcMetrics{
		reg:      reg,
		inflight: reg.Gauge("rpc_inflight", "RPCs currently being served", nil),
		methods:  make(map[string]*methodMetrics),
	}
}

func (m *rpcMetrics) method(name string) *methodMetrics {
	m.mu.RLock()
	mm := m.methods[name]
	m.mu.RUnlock()
	if mm != nil {
		return mm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if mm = m.methods[name]; mm != nil {
		return mm
	}
	l := map[string]string{"method": name}
	mm = &methodMetrics{
		requests:  m.reg.Counter("rpc_requests_total", "RPCs served, by method", l),
		errors:    m.reg.Counter("rpc_errors_total", "RPCs that returned a non-OK status, by method", l),
		reqBytes:  m.reg.Counter("rpc_request_bytes_total", "Serialized request bytes received, by method", l),
		respBytes: m.reg.Counter("rpc_response_bytes_total", "Serialized response bytes sent, by method", l),
	}
	m.methods[name] = mm
	return mm
}

// wrapHandler instruments the synchronous xRPC handler path.
func (m *rpcMetrics) wrapHandler(h xrpc.ServerHandler) xrpc.ServerHandler {
	if h == nil {
		return nil
	}
	return func(method string, payload []byte) (uint16, []byte) {
		mm := m.method(method)
		mm.requests.Inc()
		mm.reqBytes.Add(uint64(len(payload)))
		m.inflight.Add(1)
		status, resp := h(method, payload)
		m.inflight.Add(-1)
		if status != xrpc.StatusOK {
			mm.errors.Inc()
		}
		mm.respBytes.Add(uint64(len(resp)))
		return status, resp
	}
}

// wrapHandlerWindow adds windowed latency observation to the synchronous
// handler path (baseline stacks: no trace IDs, so exemplars stay unresolved).
func wrapHandlerWindow(win *metrics.RPCWindow, h xrpc.ServerHandler) xrpc.ServerHandler {
	if h == nil {
		return nil
	}
	return func(method string, payload []byte) (uint16, []byte) {
		start := trace.Now()
		status, resp := h(method, payload)
		win.Observe(trace.Now()-start, 0, status != xrpc.StatusOK)
		return status, resp
	}
}

// wrapStreamWindow is wrapHandlerWindow for the streaming path; the request
// is observed when its respond callback fires.
func wrapStreamWindow(win *metrics.RPCWindow, h xrpc.StreamHandler) xrpc.StreamHandler {
	if h == nil {
		return nil
	}
	return func(method string, payload []byte, respond xrpc.RespondFunc) {
		start := trace.Now()
		h(method, payload, func(status uint16, resp []byte) {
			win.Observe(trace.Now()-start, 0, status != xrpc.StatusOK)
			respond(status, resp)
		})
	}
}

// wrapStream instruments the streaming xRPC handler path; the RPC counts as
// in-flight until its respond callback fires.
func (m *rpcMetrics) wrapStream(h xrpc.StreamHandler) xrpc.StreamHandler {
	if h == nil {
		return nil
	}
	return func(method string, payload []byte, respond xrpc.RespondFunc) {
		mm := m.method(method)
		mm.requests.Inc()
		mm.reqBytes.Add(uint64(len(payload)))
		m.inflight.Add(1)
		h(method, payload, func(status uint16, resp []byte) {
			m.inflight.Add(-1)
			if status != xrpc.StatusOK {
				mm.errors.Inc()
			}
			mm.respBytes.Add(uint64(len(resp)))
			respond(status, resp)
		})
	}
}
